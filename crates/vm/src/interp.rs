//! The interpreter: deterministic execution with exact instruction
//! accounting, preemption, and a software TLB + predecoded instruction
//! cache on the hot fetch/load/store paths.
//!
//! # The fast path
//!
//! The first-cut interpreter paid a full page-table walk (B-tree
//! lookup, permission check, tracker probe, dirty-set insert,
//! `Arc::make_mut`) for every instruction fetch, load, and store, and
//! re-decoded every instruction word on every step. [`Cpu`] now keeps
//! three caches, all validated by the address space's generation
//! counter (see `det_memory::Translation` and DESIGN.md §4):
//!
//! * a direct-mapped **read TLB** and **write TLB** of
//!   [`Translation`]s, so a hit costs one index, one tag compare, and
//!   one O(1) redemption instead of a page-table walk. Write hits
//!   additionally skip the per-store permission re-check, dirty-set
//!   insert, and `Arc::make_mut` — the translation was minted with the
//!   frame exclusively owned and the page already dirty;
//! * a direct-mapped **decoded-instruction cache** keyed by
//!   `(pc, space, generation)`, so straight-line code decodes once.
//!
//! The caches are semantically invisible: every miss or stale hit
//! falls back to the exact slow path, a store into a page holding
//! cached decodes flushes them (self-modifying code), and an installed
//! [`AccessTracker`](det_memory::AccessTracker) disables caching
//! entirely so its page log stays exact. `Cpu::fast_path` can be
//! cleared to force the original slow path everywhere — the
//! differential suite in `tests/tlb_props.rs` runs both and demands
//! byte-identical results.
//!
//! One invariant is the caller's: **at most one `Cpu` executes a given
//! `AddressSpace`** (the kernel runs exactly one per space). The fast
//! path's in-place stores bump no generation, so a *second* CPU
//! interleaving stores on the same space could stale the first's
//! cached decodes — see the single-executor contract on
//! `AddressSpace::translated_bytes_mut`. External mutation between
//! runs through the ordinary `AddressSpace` API (writes, copies,
//! merges, snapshots) is always safe: those paths bump the generation.

use det_memory::{AddressSpace, MemError, PAGE_SHIFT, PAGE_SIZE, Translation};

use crate::isa::{Insn, Opcode, decode};
use crate::regs::Regs;

/// Why the interpreter stopped.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum VmExit {
    /// `halt` executed; status convention: `r1`.
    Halt,
    /// `sys imm` executed: the program requests a kernel service.
    /// The register file holds the arguments; `pc` already points at
    /// the next instruction, so resuming continues after the syscall.
    Sys(u16),
    /// A trap; the faulting instruction did not commit.
    Trap(VmTrap),
    /// The instruction budget was exhausted before the next
    /// instruction; resuming later continues exactly where it left
    /// off. This is the kernel's "instruction limit" (§3.2).
    OutOfBudget,
}

/// Processor trap causes.
///
/// Traps cause an implicit `Ret` to the parent space in the kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmTrap {
    /// Memory fault (unmapped or permission-denied access).
    Mem(MemError),
    /// Undefined opcode byte.
    IllegalInstruction(u8),
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The program counter is not 4-byte aligned.
    PcMisaligned(u64),
}

impl std::fmt::Display for VmTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmTrap::Mem(e) => write!(f, "memory fault: {e}"),
            VmTrap::IllegalInstruction(b) => write!(f, "illegal instruction {b:#04x}"),
            VmTrap::DivideByZero => write!(f, "integer divide by zero"),
            VmTrap::PcMisaligned(pc) => write!(f, "misaligned pc {pc:#x}"),
        }
    }
}

/// Entries per direct-mapped TLB (separate read and write arrays).
const DTLB_ENTRIES: usize = 64;

/// Slots in the exact code-page set backing the self-modifying-code
/// filter; programs spanning more distinct code pages fall back to
/// flush-on-any-filter-hit.
const CODE_PAGE_SLOTS: usize = 8;

/// Entries in the decoded-instruction cache (4 KiB of straight-line
/// code before conflict evictions start).
const ICACHE_ENTRIES: usize = 1024;

/// One data-TLB entry: a page tag plus its cached translation.
#[derive(Clone, Copy, Debug)]
struct DtlbEntry {
    vpn: u64,
    tr: Translation,
}

impl DtlbEntry {
    /// No virtual address has this page number (48-bit addresses), so
    /// an invalid entry can never tag-match.
    const INVALID: DtlbEntry = DtlbEntry {
        vpn: u64::MAX,
        tr: Translation::INVALID,
    };
}

/// One decoded-instruction cache entry.
#[derive(Clone, Copy, Debug)]
struct ICacheEntry {
    /// Tag: only 4-aligned pcs are ever filled, so `u64::MAX` is a
    /// safe invalid marker.
    pc: u64,
    space_id: u64,
    generation: u64,
    insn: Insn,
}

impl ICacheEntry {
    const INVALID: ICacheEntry = ICacheEntry {
        pc: u64::MAX,
        space_id: 0,
        generation: 0,
        insn: Insn {
            op: Opcode::Nop,
            rd: 0,
            rs: 0,
            rt: 0,
            imm: 0,
        },
    };
}

/// Counters for the fetch/load/store fast path. Monotonic over the
/// CPU's lifetime; all counts are deterministic functions of the
/// program and the kernel operations applied to its memory, never of
/// host scheduling — which is what lets the kernel charge misses in
/// virtual time.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CpuCacheStats {
    /// Decoded-instruction cache hits.
    pub icache_hits: u64,
    /// Decoded-instruction cache fills (fetch + decode performed).
    pub icache_fills: u64,
    /// Whole-icache flushes forced by stores into cached code pages.
    pub icache_flushes: u64,
    /// Read-TLB hits (loads and instruction fetches).
    pub tlb_read_hits: u64,
    /// Read-TLB fills.
    pub tlb_read_fills: u64,
    /// Write-TLB hits.
    pub tlb_write_hits: u64,
    /// Write-TLB fills.
    pub tlb_write_fills: u64,
    /// Memory accesses that took the full slow path (tracker installed,
    /// page-crossing access, or a faulting access).
    pub slow_accesses: u64,
    /// Page-table walks performed on the VM's behalf: every TLB fill
    /// attempt and every slow-path access. The ratio of this to
    /// retired instructions is the stat the TLB exists to crush.
    pub pages_walked: u64,
}

impl CpuCacheStats {
    /// Total TLB + icache hits.
    pub fn hits(&self) -> u64 {
        self.icache_hits + self.tlb_read_hits + self.tlb_write_hits
    }

    /// Total fills (misses that installed a fresh entry).
    pub fn fills(&self) -> u64 {
        self.icache_fills + self.tlb_read_fills + self.tlb_write_fills
    }

    /// Hit rate over all cache probes, in [0, 1]; 1.0 for an idle CPU.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.fills() + self.slow_accesses;
        if total == 0 {
            1.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - earlier` (for per-quantum
    /// accounting of a live CPU).
    pub fn since(&self, earlier: &CpuCacheStats) -> CpuCacheStats {
        CpuCacheStats {
            icache_hits: self.icache_hits - earlier.icache_hits,
            icache_fills: self.icache_fills - earlier.icache_fills,
            icache_flushes: self.icache_flushes - earlier.icache_flushes,
            tlb_read_hits: self.tlb_read_hits - earlier.tlb_read_hits,
            tlb_read_fills: self.tlb_read_fills - earlier.tlb_read_fills,
            tlb_write_hits: self.tlb_write_hits - earlier.tlb_write_hits,
            tlb_write_fills: self.tlb_write_fills - earlier.tlb_write_fills,
            slow_accesses: self.slow_accesses - earlier.slow_accesses,
            pages_walked: self.pages_walked - earlier.pages_walked,
        }
    }
}

/// A deterministic CPU: registers plus a lifetime instruction counter.
///
/// The memory it executes against is passed to [`Cpu::run`] so the
/// kernel can check a space's memory in and out around preemptions.
/// The translation and decode caches ride along; they validate against
/// the specific `AddressSpace` (identity and generation) on every hit,
/// so a `Cpu` may be kept across preemptions, rendezvous, and even a
/// wholesale replacement of its memory image — stale entries miss,
/// they never lie.
#[derive(Clone)]
pub struct Cpu {
    /// Architectural register state.
    pub regs: Regs,
    /// Total instructions retired over the CPU's lifetime.
    pub insn_count: u64,
    /// Use the TLB/icache fast path (default). Clear to force every
    /// access down the original slow path — same semantics, used as
    /// the reference side of differential tests.
    pub fast_path: bool,
    /// Fast-path hit/miss counters.
    pub cache_stats: CpuCacheStats,
    dtlb_read: [DtlbEntry; DTLB_ENTRIES],
    dtlb_write: [DtlbEntry; DTLB_ENTRIES],
    icache: [ICacheEntry; ICACHE_ENTRIES],
    /// Coarse filter of code pages with live icache entries: bit
    /// `vpn & 63`. A store whose page hits the filter consults the
    /// exact `code_pages` set before flushing (self-modifying code);
    /// false positives cost a short scan, false negatives cannot
    /// happen.
    code_vpns: u64,
    /// Exact set of code page numbers with live icache entries (first
    /// `code_page_count` slots). Confirms or rejects filter hits, so a
    /// data page that merely aliases a code page mod 64 does not flush
    /// the icache on every store.
    code_pages: [u64; CODE_PAGE_SLOTS],
    code_page_count: u8,
    /// More than `CODE_PAGE_SLOTS` distinct code pages are live: the
    /// exact set is no longer complete, so every filter hit flushes.
    code_pages_overflowed: bool,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu {
            regs: Regs::default(),
            insn_count: 0,
            fast_path: true,
            cache_stats: CpuCacheStats::default(),
            dtlb_read: [DtlbEntry::INVALID; DTLB_ENTRIES],
            dtlb_write: [DtlbEntry::INVALID; DTLB_ENTRIES],
            icache: [ICacheEntry::INVALID; ICACHE_ENTRIES],
            code_vpns: 0,
            code_pages: [0; CODE_PAGE_SLOTS],
            code_page_count: 0,
            code_pages_overflowed: false,
        }
    }
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("regs", &self.regs)
            .field("insn_count", &self.insn_count)
            .field("fast_path", &self.fast_path)
            .field("cache_stats", &self.cache_stats)
            .finish_non_exhaustive()
    }
}

impl Cpu {
    /// Returns a CPU with zeroed registers at pc 0.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Returns a CPU with the given entry point.
    pub fn at_entry(pc: u64) -> Cpu {
        Cpu {
            regs: Regs::at_entry(pc),
            ..Cpu::default()
        }
    }

    /// Returns a CPU with the translation/decode fast path disabled —
    /// the pre-TLB interpreter, kept as the reference side of
    /// differential tests and benchmarks.
    pub fn slow_path() -> Cpu {
        Cpu {
            fast_path: false,
            ..Cpu::default()
        }
    }

    /// Drops every cached translation and decoded instruction. Never
    /// required for correctness (stale entries self-invalidate);
    /// provided for benchmarks that want cold-cache numbers.
    pub fn flush_caches(&mut self) {
        self.dtlb_read = [DtlbEntry::INVALID; DTLB_ENTRIES];
        self.dtlb_write = [DtlbEntry::INVALID; DTLB_ENTRIES];
        self.flush_icache();
    }

    /// Drops every cached decode and the code-page bookkeeping.
    fn flush_icache(&mut self) {
        self.icache = [ICacheEntry::INVALID; ICACHE_ENTRIES];
        self.code_vpns = 0;
        self.code_pages = [0; CODE_PAGE_SLOTS];
        self.code_page_count = 0;
        self.code_pages_overflowed = false;
    }

    /// True if `vpn` or `last_vpn` may hold cached decodes (exact when
    /// the code-page set has not overflowed).
    fn stores_into_code(&self, vpn: u64, last_vpn: u64) -> bool {
        if self.code_pages_overflowed {
            return true;
        }
        self.code_pages[..self.code_page_count as usize]
            .iter()
            .any(|&p| p == vpn || p == last_vpn)
    }

    /// Executes instructions against `mem` until halt, syscall, trap,
    /// or budget exhaustion.
    ///
    /// `budget` limits the number of instructions retired in this call
    /// (`None` = unlimited). The count is exact: a budget of `n`
    /// retires at most `n` instructions, and [`VmExit::OutOfBudget`] is
    /// returned *between* instructions so a later `run` resumes
    /// precisely — the property the paper's deterministic scheduler
    /// depends on.
    pub fn run(&mut self, mem: &mut AddressSpace, budget: Option<u64>) -> VmExit {
        // `None` is folded to u64::MAX: the loop below then carries no
        // Option per instruction, and 2^64 instructions is centuries of
        // virtual time, unreachable before the kernel's chunking.
        let remaining = match budget {
            Some(0) => return VmExit::OutOfBudget,
            Some(n) => n,
            None => u64::MAX,
        };
        // Monomorphize the dispatch loop per path so the fast loop
        // carries no `if fast_path` tests and the slow loop carries no
        // cache probes.
        if self.fast_path {
            self.run_loop::<true>(mem, remaining)
        } else {
            self.run_loop::<false>(mem, remaining)
        }
    }

    /// Executes one instruction; returns `Some` on any stop condition.
    ///
    /// Retired instructions (including `halt`/`sys`) bump
    /// [`Cpu::insn_count`]; trapped instructions do not commit.
    /// Equivalent to [`run`](Cpu::run) with a budget of one (which is
    /// exactly how it is implemented, so the two can never drift).
    pub fn step(&mut self, mem: &mut AddressSpace) -> Option<VmExit> {
        match self.run(mem, Some(1)) {
            VmExit::OutOfBudget => None,
            exit => Some(exit),
        }
    }

    /// The interpreter proper: fetch → dispatch → retire, with `pc`
    /// and the cache-validation tags held in locals across iterations.
    ///
    /// Tag hoisting is sound because `mem` is exclusively borrowed for
    /// the whole call: the space id cannot change at all, and the
    /// generation can only be bumped by this loop's own slow-path
    /// stores (`AddressSpace::write`), after which the store arm
    /// reloads it. Every exit path writes the architectural `pc` back
    /// before returning.
    fn run_loop<const FAST: bool>(&mut self, mem: &mut AddressSpace, mut remaining: u64) -> VmExit {
        use Opcode::*;
        let sid = mem.space_id();
        let mut generation = mem.generation();
        let mut pc = self.regs.pc;
        macro_rules! trap {
            ($t:expr) => {{
                self.regs.pc = pc;
                return VmExit::Trap($t);
            }};
        }
        loop {
            let insn = if FAST {
                let idx = ((pc >> 2) as usize) & (ICACHE_ENTRIES - 1);
                let e = &self.icache[idx];
                if e.pc == pc && e.space_id == sid && e.generation == generation {
                    self.cache_stats.icache_hits += 1;
                    e.insn
                } else {
                    match self.fetch_fill(mem, pc, idx) {
                        Ok(i) => i,
                        Err(exit) => {
                            self.regs.pc = pc;
                            return exit;
                        }
                    }
                }
            } else {
                match self.fetch_slow(mem, pc) {
                    Ok(i) => i,
                    Err(exit) => {
                        self.regs.pc = pc;
                        return exit;
                    }
                }
            };
            let next_pc = pc + 4;
            // Register fields decode from 4-bit slots; re-masking here
            // is free and lets the compiler drop the 16-entry bounds
            // checks on the register file.
            let (rd, rs, rt) = (
                (insn.rd & 15) as usize,
                (insn.rs & 15) as usize,
                (insn.rt & 15) as usize,
            );
            let imm = insn.imm as i64;
            let g = &mut self.regs.gpr;
            // Every arm leaves `pc` at the next instruction (or
            // returns). Branch displacements are in words relative to
            // `next_pc`.
            match insn.op {
                Nop => pc = next_pc,
                Halt => {
                    self.insn_count += 1;
                    self.regs.pc = next_pc;
                    return VmExit::Halt;
                }
                Sys => {
                    self.insn_count += 1;
                    self.regs.pc = next_pc;
                    return VmExit::Sys(insn.imm as u16 & 0xfff);
                }

                Add => {
                    g[rd] = g[rs].wrapping_add(g[rt]);
                    pc = next_pc;
                }
                Sub => {
                    g[rd] = g[rs].wrapping_sub(g[rt]);
                    pc = next_pc;
                }
                Mul => {
                    g[rd] = g[rs].wrapping_mul(g[rt]);
                    pc = next_pc;
                }
                Div => {
                    if g[rt] == 0 {
                        trap!(VmTrap::DivideByZero);
                    }
                    g[rd] = (g[rs] as i64).wrapping_div(g[rt] as i64) as u64;
                    pc = next_pc;
                }
                Mod => {
                    if g[rt] == 0 {
                        trap!(VmTrap::DivideByZero);
                    }
                    g[rd] = (g[rs] as i64).wrapping_rem(g[rt] as i64) as u64;
                    pc = next_pc;
                }
                Divu => {
                    if g[rt] == 0 {
                        trap!(VmTrap::DivideByZero);
                    }
                    g[rd] = g[rs] / g[rt];
                    pc = next_pc;
                }
                Modu => {
                    if g[rt] == 0 {
                        trap!(VmTrap::DivideByZero);
                    }
                    g[rd] = g[rs] % g[rt];
                    pc = next_pc;
                }
                And => {
                    g[rd] = g[rs] & g[rt];
                    pc = next_pc;
                }
                Or => {
                    g[rd] = g[rs] | g[rt];
                    pc = next_pc;
                }
                Xor => {
                    g[rd] = g[rs] ^ g[rt];
                    pc = next_pc;
                }
                Shl => {
                    g[rd] = g[rs].wrapping_shl(g[rt] as u32);
                    pc = next_pc;
                }
                Shr => {
                    g[rd] = g[rs].wrapping_shr(g[rt] as u32);
                    pc = next_pc;
                }
                Sar => {
                    g[rd] = (g[rs] as i64).wrapping_shr(g[rt] as u32) as u64;
                    pc = next_pc;
                }
                Slt => {
                    g[rd] = ((g[rs] as i64) < (g[rt] as i64)) as u64;
                    pc = next_pc;
                }
                Sltu => {
                    g[rd] = (g[rs] < g[rt]) as u64;
                    pc = next_pc;
                }

                Addi => {
                    g[rd] = g[rs].wrapping_add(imm as u64);
                    pc = next_pc;
                }
                Andi => {
                    g[rd] = g[rs] & imm as u64;
                    pc = next_pc;
                }
                Ori => {
                    g[rd] = g[rs] | imm as u64;
                    pc = next_pc;
                }
                Xori => {
                    g[rd] = g[rs] ^ imm as u64;
                    pc = next_pc;
                }
                Shli => {
                    g[rd] = g[rs].wrapping_shl(imm as u32 & 63);
                    pc = next_pc;
                }
                Shri => {
                    g[rd] = g[rs].wrapping_shr(imm as u32 & 63);
                    pc = next_pc;
                }
                Sari => {
                    g[rd] = (g[rs] as i64).wrapping_shr(imm as u32 & 63) as u64;
                    pc = next_pc;
                }
                Slti => {
                    g[rd] = ((g[rs] as i64) < imm) as u64;
                    pc = next_pc;
                }
                Muli => {
                    g[rd] = g[rs].wrapping_mul(imm as u64);
                    pc = next_pc;
                }
                Ldi => {
                    g[rd] = imm as u64;
                    pc = next_pc;
                }
                Ldih => {
                    g[rd] = (g[rd] << 12) | (insn.imm as u64 & 0xfff);
                    pc = next_pc;
                }

                Ldb | Ldh | Ldw | Ldd => {
                    if let Err(t) = self.exec_mem(insn, mem) {
                        trap!(t);
                    }
                    pc = next_pc;
                }
                Stb | Sth | Stw | Std => {
                    if let Err(t) = self.exec_mem(insn, mem) {
                        trap!(t);
                    }
                    if FAST {
                        // A store that fell back to the slow path may
                        // have bumped the generation; re-hoist it.
                        generation = mem.generation();
                    }
                    pc = next_pc;
                }

                Beq => {
                    pc = if g[rs] == g[rt] {
                        (next_pc as i64 + imm * 4) as u64
                    } else {
                        next_pc
                    };
                }
                Bne => {
                    pc = if g[rs] != g[rt] {
                        (next_pc as i64 + imm * 4) as u64
                    } else {
                        next_pc
                    };
                }
                Blt => {
                    pc = if (g[rs] as i64) < (g[rt] as i64) {
                        (next_pc as i64 + imm * 4) as u64
                    } else {
                        next_pc
                    };
                }
                Bge => {
                    pc = if (g[rs] as i64) >= (g[rt] as i64) {
                        (next_pc as i64 + imm * 4) as u64
                    } else {
                        next_pc
                    };
                }
                Bltu => {
                    pc = if g[rs] < g[rt] {
                        (next_pc as i64 + imm * 4) as u64
                    } else {
                        next_pc
                    };
                }
                Bgeu => {
                    pc = if g[rs] >= g[rt] {
                        (next_pc as i64 + imm * 4) as u64
                    } else {
                        next_pc
                    };
                }
                Jal => {
                    g[rd] = next_pc;
                    pc = (next_pc as i64 + imm * 4) as u64;
                }
                Jalr => {
                    let target = g[rs].wrapping_add(imm as u64);
                    g[rd] = next_pc;
                    pc = target;
                }

                Fadd => {
                    let v = self.regs.f(rs) + self.regs.f(rt);
                    self.regs.set_f(rd, v);
                    pc = next_pc;
                }
                Fsub => {
                    let v = self.regs.f(rs) - self.regs.f(rt);
                    self.regs.set_f(rd, v);
                    pc = next_pc;
                }
                Fmul => {
                    let v = self.regs.f(rs) * self.regs.f(rt);
                    self.regs.set_f(rd, v);
                    pc = next_pc;
                }
                Fdiv => {
                    let v = self.regs.f(rs) / self.regs.f(rt);
                    self.regs.set_f(rd, v);
                    pc = next_pc;
                }
                Fsqrt => {
                    let v = self.regs.f(rs).sqrt();
                    self.regs.set_f(rd, v);
                    pc = next_pc;
                }
                Cvtif => {
                    let v = self.regs.gpr[rs] as i64 as f64;
                    self.regs.set_f(rd, v);
                    pc = next_pc;
                }
                Cvtfi => {
                    // Rust's saturating float→int cast is deterministic.
                    self.regs.gpr[rd] = self.regs.f(rs) as i64 as u64;
                    pc = next_pc;
                }
                Flt => {
                    self.regs.gpr[rd] = (self.regs.f(rs) < self.regs.f(rt)) as u64;
                    pc = next_pc;
                }
                Feq => {
                    self.regs.gpr[rd] = (self.regs.f(rs) == self.regs.f(rt)) as u64;
                    pc = next_pc;
                }
                Fle => {
                    self.regs.gpr[rd] = (self.regs.f(rs) <= self.regs.f(rt)) as u64;
                    pc = next_pc;
                }
            }
            self.insn_count += 1;
            remaining -= 1;
            if remaining == 0 {
                self.regs.pc = pc;
                return VmExit::OutOfBudget;
            }
        }
    }

    /// Fetch miss: check alignment, read and decode the word, and (if
    /// no tracker is watching) install the decode in the icache.
    fn fetch_fill(&mut self, mem: &mut AddressSpace, pc: u64, idx: usize) -> Result<Insn, VmExit> {
        if !pc.is_multiple_of(4) {
            return Err(VmExit::Trap(VmTrap::PcMisaligned(pc)));
        }
        let word = match self.load::<4>(mem, pc) {
            Ok(b) => u32::from_le_bytes(b),
            Err(e) => return Err(VmExit::Trap(VmTrap::Mem(e))),
        };
        let insn = match decode(word) {
            Ok(i) => i,
            Err(e) => return Err(VmExit::Trap(VmTrap::IllegalInstruction(e.opcode))),
        };
        // With a tracker installed nothing may be cached: an icache hit
        // would skip the fetch's page-log record.
        if mem.tracker().is_none() {
            self.cache_stats.icache_fills += 1;
            self.icache[idx] = ICacheEntry {
                pc,
                space_id: mem.space_id(),
                generation: mem.generation(),
                insn,
            };
            let vpn = pc >> PAGE_SHIFT;
            self.code_vpns |= 1 << (vpn & 63);
            if !self.code_pages[..self.code_page_count as usize].contains(&vpn) {
                if (self.code_page_count as usize) < CODE_PAGE_SLOTS {
                    self.code_pages[self.code_page_count as usize] = vpn;
                    self.code_page_count += 1;
                } else {
                    self.code_pages_overflowed = true;
                }
            }
        }
        Ok(insn)
    }

    /// The original fetch path, byte-for-byte (used when `fast_path`
    /// is off).
    fn fetch_slow(&mut self, mem: &mut AddressSpace, pc: u64) -> Result<Insn, VmExit> {
        if !pc.is_multiple_of(4) {
            return Err(VmExit::Trap(VmTrap::PcMisaligned(pc)));
        }
        let word = match mem.read_u32(pc) {
            Ok(w) => w,
            Err(e) => return Err(VmExit::Trap(VmTrap::Mem(e))),
        };
        decode(word).map_err(|e| VmExit::Trap(VmTrap::IllegalInstruction(e.opcode)))
    }

    /// Loads `N` bytes, through the read TLB when possible.
    #[inline]
    fn load<const N: usize>(&mut self, mem: &AddressSpace, addr: u64) -> Result<[u8; N], MemError> {
        let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
        if self.fast_path && off + N <= PAGE_SIZE {
            let vpn = addr >> PAGE_SHIFT;
            let idx = (vpn as usize) & (DTLB_ENTRIES - 1);
            let e = self.dtlb_read[idx];
            if e.vpn == vpn {
                if let Some(bytes) = mem.translated_bytes(e.tr) {
                    self.cache_stats.tlb_read_hits += 1;
                    return Ok(bytes[off..off + N].try_into().expect("page-bounded"));
                }
            }
            if let Some(tr) = mem.translate_read(addr) {
                self.cache_stats.pages_walked += 1;
                self.cache_stats.tlb_read_fills += 1;
                self.dtlb_read[idx] = DtlbEntry { vpn, tr };
                let bytes = mem.translated_bytes(tr).expect("fresh translation");
                return Ok(bytes[off..off + N].try_into().expect("page-bounded"));
            }
            // A refused translation (tracker installed, unmapped, no
            // permission) is not counted here: the slow path below
            // performs — and counts — the one real walk.
        }
        // Tracker installed, page-crossing access, or a fault: the
        // exact slow path (which also produces the exact error).
        if self.fast_path {
            self.cache_stats.slow_accesses += 1;
            self.cache_stats.pages_walked += 1;
        }
        let mut buf = [0u8; N];
        mem.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Stores `N` bytes, through the write TLB when possible.
    #[inline]
    fn store<const N: usize>(
        &mut self,
        mem: &mut AddressSpace,
        addr: u64,
        data: [u8; N],
    ) -> Result<(), MemError> {
        if self.fast_path {
            // Self-modifying code: if a page this store can touch holds
            // cached decodes, drop them before the bytes change. The
            // 64-bit filter rejects most stores in one AND; a filter
            // hit (which a data page aliasing a code page mod 64 can
            // also produce) is confirmed against the exact code-page
            // set, so only genuine code stores pay the flush.
            let vpn = addr >> PAGE_SHIFT;
            let last_vpn = addr.saturating_add(N as u64 - 1) >> PAGE_SHIFT;
            let mask = (1u64 << (vpn & 63)) | (1u64 << (last_vpn & 63));
            if self.code_vpns & mask != 0 && self.stores_into_code(vpn, last_vpn) {
                self.cache_stats.icache_flushes += 1;
                self.flush_icache();
            }
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            if off + N <= PAGE_SIZE {
                let idx = (vpn as usize) & (DTLB_ENTRIES - 1);
                let e = self.dtlb_write[idx];
                if e.vpn == vpn {
                    if let Some(bytes) = mem.translated_bytes_mut(e.tr) {
                        self.cache_stats.tlb_write_hits += 1;
                        bytes[off..off + N].copy_from_slice(&data);
                        return Ok(());
                    }
                }
                if let Some(tr) = mem.translate_write(addr) {
                    self.cache_stats.pages_walked += 1;
                    self.cache_stats.tlb_write_fills += 1;
                    self.dtlb_write[idx] = DtlbEntry { vpn, tr };
                    let bytes = mem
                        .translated_bytes_mut(tr)
                        .expect("fresh exclusive translation");
                    bytes[off..off + N].copy_from_slice(&data);
                    return Ok(());
                }
                // Refused translation: the slow path below performs —
                // and counts — the one real walk.
            }
        }
        if self.fast_path {
            self.cache_stats.slow_accesses += 1;
            self.cache_stats.pages_walked += 1;
        }
        mem.write(addr, &data)
    }

    /// Loads, stores — the opcodes that need the TLB helpers (and thus
    /// `&mut self` rather than a borrowed register file).
    fn exec_mem(&mut self, i: Insn, mem: &mut AddressSpace) -> Result<(), VmTrap> {
        use Opcode::*;
        let (rd, rs) = ((i.rd & 15) as usize, (i.rs & 15) as usize);
        let a = self.regs.gpr[rs].wrapping_add(i.imm as i64 as u64);
        match i.op {
            Ldb => {
                let b = self.load::<1>(mem, a).map_err(VmTrap::Mem)?;
                self.regs.gpr[rd] = b[0] as u64;
            }
            Ldh => {
                let b = self.load::<2>(mem, a).map_err(VmTrap::Mem)?;
                self.regs.gpr[rd] = u16::from_le_bytes(b) as u64;
            }
            Ldw => {
                let b = self.load::<4>(mem, a).map_err(VmTrap::Mem)?;
                self.regs.gpr[rd] = u32::from_le_bytes(b) as u64;
            }
            Ldd => {
                let b = self.load::<8>(mem, a).map_err(VmTrap::Mem)?;
                self.regs.gpr[rd] = u64::from_le_bytes(b);
            }
            Stb => {
                let v = self.regs.gpr[rd] as u8;
                self.store(mem, a, v.to_le_bytes()).map_err(VmTrap::Mem)?;
            }
            Sth => {
                let v = self.regs.gpr[rd] as u16;
                self.store(mem, a, v.to_le_bytes()).map_err(VmTrap::Mem)?;
            }
            Stw => {
                let v = self.regs.gpr[rd] as u32;
                self.store(mem, a, v.to_le_bytes()).map_err(VmTrap::Mem)?;
            }
            Std => {
                let v = self.regs.gpr[rd];
                self.store(mem, a, v.to_le_bytes()).map_err(VmTrap::Mem)?;
            }
            _ => unreachable!("exec_mem called for non-memory opcode"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use det_memory::{Perm, Region};

    fn load(src: &str) -> (Cpu, AddressSpace) {
        let image = assemble(src).expect("assembles");
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
        mem.write(0, &image.bytes).unwrap();
        (Cpu::new(), mem)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 100
            ldi r2, 42
            sub r3, r1, r2
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[3], 58);
        assert_eq!(cpu.insn_count, 4);
    }

    #[test]
    fn loop_sum() {
        // Sum 1..=10 into r3.
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 10
            ldi r3, 0
        loop:
            add r3, r3, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[3], 55);
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        let (mut cpu, mut mem) = load(
            "
            li  r5, 0x8000
            ldi r1, -1
            std r1, [r5+0]
            ldb r2, [r5+0]
            ldh r3, [r5+0]
            ldw r4, [r5+0]
            ldd r6, [r5+0]
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[2], 0xff);
        assert_eq!(cpu.regs.gpr[3], 0xffff);
        assert_eq!(cpu.regs.gpr[4], 0xffff_ffff);
        assert_eq!(cpu.regs.gpr[6], u64::MAX);
    }

    #[test]
    fn divide_by_zero_traps_without_commit() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 5
            ldi r2, 0
            div r3, r1, r2
            halt
            ",
        );
        let exit = cpu.run(&mut mem, None);
        assert_eq!(exit, VmExit::Trap(VmTrap::DivideByZero));
        // Trapped instruction does not retire; pc points at it.
        assert_eq!(cpu.insn_count, 2);
        assert_eq!(cpu.regs.pc, 8);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
        mem.write_u32(0, 0xff00_0000).unwrap();
        let mut cpu = Cpu::new();
        assert_eq!(
            cpu.run(&mut mem, None),
            VmExit::Trap(VmTrap::IllegalInstruction(0xff))
        );
    }

    #[test]
    fn unmapped_fetch_traps() {
        let mut mem = AddressSpace::new();
        let mut cpu = Cpu::new();
        assert!(matches!(
            cpu.run(&mut mem, None),
            VmExit::Trap(VmTrap::Mem(MemError::Unmapped { .. }))
        ));
    }

    #[test]
    fn store_to_readonly_traps() {
        let image = assemble("li r5, 0x8000\nstd r1, [r5+0]\nhalt").unwrap();
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
        mem.map_zero(Region::new(0x8000, 0x9000), Perm::R).unwrap();
        mem.write(0, &image.bytes).unwrap();
        let mut cpu = Cpu::new();
        assert!(matches!(
            cpu.run(&mut mem, None),
            VmExit::Trap(VmTrap::Mem(MemError::PermDenied { .. }))
        ));
    }

    #[test]
    fn misaligned_pc_traps() {
        let mut cpu = Cpu::new();
        cpu.regs.pc = 2;
        let mut mem = AddressSpace::new();
        assert_eq!(
            cpu.step(&mut mem),
            Some(VmExit::Trap(VmTrap::PcMisaligned(2)))
        );
    }

    #[test]
    fn sys_returns_control_and_resumes() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 1
            sys 7
            addi r1, r1, 1
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Sys(7));
        assert_eq!(cpu.regs.gpr[1], 1);
        // Resume after the syscall.
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[1], 2);
    }

    #[test]
    fn budget_is_exact_and_resumable() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 0
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            halt
            ",
        );
        // Run exactly 2 instructions.
        assert_eq!(cpu.run(&mut mem, Some(2)), VmExit::OutOfBudget);
        assert_eq!(cpu.insn_count, 2);
        assert_eq!(cpu.regs.gpr[1], 1);
        // Zero budget runs nothing.
        assert_eq!(cpu.run(&mut mem, Some(0)), VmExit::OutOfBudget);
        assert_eq!(cpu.insn_count, 2);
        // Resume to completion.
        assert_eq!(cpu.run(&mut mem, Some(100)), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[1], 3);
        assert_eq!(cpu.insn_count, 5);
    }

    #[test]
    fn preemption_is_transparent() {
        // Same program, run once without and once with many tiny
        // quanta: identical final state and instruction count.
        let src = "
            ldi r1, 37
            ldi r3, 0
        loop:
            add r3, r3, r1
            addi r1, r1, -1
            bne r1, r0, loop
            li  r5, 0x8000
            std r3, [r5+0]
            halt
        ";
        let (mut a, mut mem_a) = load(src);
        assert_eq!(a.run(&mut mem_a, None), VmExit::Halt);

        let (mut b, mut mem_b) = load(src);
        loop {
            match b.run(&mut mem_b, Some(3)) {
                VmExit::OutOfBudget => continue,
                VmExit::Halt => break,
                other => panic!("unexpected exit {other:?}"),
            }
        }
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.insn_count, b.insn_count);
        assert_eq!(mem_a.content_digest(), mem_b.content_digest());
    }

    #[test]
    fn float_ops() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 9
            cvtif r2, r1
            fsqrt r3, r2
            ldi r4, 2
            cvtif r5, r4
            fmul r6, r3, r5
            cvtfi r7, r6
            fle r8, r2, r6
            flt r9, r2, r6
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.f(3), 3.0);
        assert_eq!(cpu.regs.gpr[7], 6);
        assert_eq!(cpu.regs.gpr[8], 0); // 9.0 <= 6.0 is false.
        assert_eq!(cpu.regs.gpr[9], 0);
    }

    #[test]
    fn jal_and_jalr_call_return() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 5
            jal r14, double
            jal r14, double
            halt
        double:
            add r1, r1, r1
            jalr r0, r14, 0
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[1], 20);
    }

    // ------------------------------------------------------------------
    // Fast-path specifics
    // ------------------------------------------------------------------

    #[test]
    fn fast_and_slow_paths_agree() {
        let src = "
            ldi r1, 200
            ldi r3, 0
            li  r5, 0x8000
        loop:
            add r3, r3, r1
            std r3, [r5+0]
            ldd r4, [r5+0]
            stb r3, [r5+9]
            ldh r6, [r5+8]
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        ";
        let (mut fast, mut mem_f) = load(src);
        let (_, mut mem_s) = load(src);
        let mut slow = Cpu::slow_path();
        assert_eq!(fast.run(&mut mem_f, None), VmExit::Halt);
        assert_eq!(slow.run(&mut mem_s, None), VmExit::Halt);
        assert_eq!(fast.regs, slow.regs);
        assert_eq!(fast.insn_count, slow.insn_count);
        assert_eq!(mem_f.content_digest(), mem_s.content_digest());
        // And the fast run actually used its caches.
        assert!(fast.cache_stats.icache_hits > 1000);
        assert!(fast.cache_stats.tlb_write_hits > 100);
        assert_eq!(slow.cache_stats, CpuCacheStats::default());
    }

    #[test]
    fn loop_hits_cache_and_walks_few_pages() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 0
        loop:
            addi r1, r1, 1
            beq r0, r0, loop
            ",
        );
        assert_eq!(cpu.run(&mut mem, Some(100_000)), VmExit::OutOfBudget);
        let s = cpu.cache_stats;
        assert!(s.hit_rate() > 0.999, "hit rate {}", s.hit_rate());
        // A tight loop touches one code page: a handful of walks, ever.
        assert!(s.pages_walked < 10, "pages walked {}", s.pages_walked);
        assert!(s.icache_hits > 99_000);
    }

    /// Hand-assembled image: words at ascending addresses from 0.
    fn load_words(words: &[u32], extra: &[(u64, u32)]) -> (Cpu, AddressSpace) {
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
        for (i, w) in words.iter().enumerate() {
            mem.write_u32((i * 4) as u64, *w).unwrap();
        }
        for &(addr, w) in extra {
            mem.write_u32(addr, w).unwrap();
        }
        (Cpu::new(), mem)
    }

    #[test]
    fn self_modifying_code_reflects_stores() {
        use crate::isa::encode;
        // The program loads `ldi r2, 7` from data memory and writes it
        // over the instruction at address 12, then executes it.
        let patch = encode(Insn::new(Opcode::Ldi, 2, 0, 0, 7));
        let words = [
            encode(Insn::new(Opcode::Ldw, 4, 0, 0, 256)), // 0: r4 = patch
            encode(Insn::new(Opcode::Stw, 4, 0, 0, 12)),  // 4: patch @12
            encode(Insn::new(Opcode::Nop, 0, 0, 0, 0)),   // 8
            encode(Insn::new(Opcode::Halt, 0, 0, 0, 0)),  // 12: replaced
            encode(Insn::new(Opcode::Halt, 0, 0, 0, 0)),  // 16
        ];
        let (mut fast, mut mem_f) = load_words(&words, &[(256, patch)]);
        assert_eq!(fast.run(&mut mem_f, None), VmExit::Halt);
        assert_eq!(fast.regs.gpr[2], 7, "patched instruction must execute");
        assert_eq!(fast.regs.pc, 20, "halt at 16, not the patched 12");

        // Slow path agrees.
        let (_, mut mem_s) = load_words(&words, &[(256, patch)]);
        let mut slow = Cpu::slow_path();
        assert_eq!(slow.run(&mut mem_s, None), VmExit::Halt);
        assert_eq!(fast.regs, slow.regs);
    }

    #[test]
    fn self_modifying_code_after_warm_icache() {
        use crate::isa::encode;
        // First pass executes (and caches) the target instruction, then
        // patches it and loops back — the store must flush the cached
        // decode so the second pass sees the new instruction.
        let patch = encode(Insn::new(Opcode::Ldi, 2, 0, 0, 9));
        let words = [
            encode(Insn::new(Opcode::Ldw, 4, 0, 0, 256)), // 0: r4 = patch
            encode(Insn::new(Opcode::Ldi, 2, 0, 0, 1)),   // 4: target
            encode(Insn::new(Opcode::Bne, 0, 5, 0, 3)),   // 8: pass 2 → 24
            encode(Insn::new(Opcode::Ldi, 5, 0, 0, 1)),   // 12: flag
            encode(Insn::new(Opcode::Stw, 4, 0, 0, 4)),   // 16: patch @4
            encode(Insn::new(Opcode::Beq, 0, 0, 0, -5)),  // 20: → 4
            encode(Insn::new(Opcode::Halt, 0, 0, 0, 0)),  // 24
        ];
        let (mut fast, mut mem_f) = load_words(&words, &[(256, patch)]);
        let (_, mut mem_s) = load_words(&words, &[(256, patch)]);
        let mut slow = Cpu::slow_path();
        assert_eq!(fast.run(&mut mem_f, None), VmExit::Halt);
        assert_eq!(slow.run(&mut mem_s, None), VmExit::Halt);
        assert_eq!(fast.regs, slow.regs);
        assert_eq!(fast.regs.gpr[2], 9);
        assert!(fast.cache_stats.icache_flushes >= 1);
    }

    #[test]
    fn external_mutation_between_steps_is_seen() {
        // A cached translation must go stale when the kernel mutates
        // memory between quanta (snapshot, merge, protection change).
        let (mut cpu, mut mem) = load(
            "
            li  r5, 0x8000
        loop:
            ldd r2, [r5+0]
            beq r0, r0, loop
            ",
        );
        assert_eq!(cpu.run(&mut mem, Some(10)), VmExit::OutOfBudget);
        assert_eq!(cpu.regs.gpr[2], 0);
        // External write through the kernel path.
        mem.write_u64(0x8000, 0xFEED).unwrap();
        assert_eq!(cpu.run(&mut mem, Some(10)), VmExit::OutOfBudget);
        assert_eq!(cpu.regs.gpr[2], 0xFEED);
        // Protection change faults the next load.
        mem.set_perm(Region::new(0x8000, 0x9000), Perm::NONE)
            .unwrap();
        assert!(matches!(
            cpu.run(&mut mem, Some(10)),
            VmExit::Trap(VmTrap::Mem(MemError::PermDenied { .. }))
        ));
    }

    #[test]
    fn cpu_survives_memory_image_replacement() {
        // Swapping in a different AddressSpace (kernel Tree option)
        // must never produce stale hits: the space id differs.
        let (mut cpu, mut mem_a) = load("ldi r1, 1\nbeq r0, r0, -2\n");
        assert_eq!(cpu.run(&mut mem_a, Some(100)), VmExit::OutOfBudget);
        let (_, mut mem_b) = load("ldi r1, 2\nbeq r0, r0, -2\n");
        cpu.regs.pc = 0;
        assert_eq!(cpu.run(&mut mem_b, Some(3)), VmExit::OutOfBudget);
        assert_eq!(cpu.regs.gpr[1], 2);
    }

    #[test]
    fn tracker_log_identical_with_fast_path() {
        use det_memory::AccessTracker;
        let src = "
            li  r5, 0x8000
            ldd r2, [r5+0]
            std r2, [r5+256]
            ldb r3, [r5+0]
            halt
        ";
        let run = |cpu: &mut Cpu| {
            let (_, mut mem) = load(src);
            let t = AccessTracker::new();
            mem.set_tracker(Some(t.clone()));
            assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
            (t.pages_read(), t.pages_written())
        };
        let fast_log = run(&mut Cpu::new());
        let slow_log = run(&mut Cpu::slow_path());
        assert_eq!(fast_log, slow_log);
        // Fetches are reads: page 0 must be in the read set.
        assert!(fast_log.0.contains(&0));
        assert!(fast_log.1.contains(&8));
    }

    #[test]
    fn store_page_aliasing_code_page_mod64_does_not_flush() {
        // Code lives at vpn 0; the store target at 0x40000 is vpn 64 —
        // the same 64-bit filter bit. The exact code-page set must
        // reject the false positive, so a store-heavy loop keeps its
        // decoded instructions.
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
        mem.map_zero(Region::new(0x40000, 0x41000), Perm::RW)
            .unwrap();
        let image = assemble(
            "
            li r5, 0x40000
        loop:
            std r1, [r5+0]
            addi r1, r1, 1
            beq r0, r0, loop
            ",
        )
        .unwrap();
        mem.write(0, &image.bytes).unwrap();
        let mut cpu = Cpu::new();
        assert_eq!(cpu.run(&mut mem, Some(30_000)), VmExit::OutOfBudget);
        let s = cpu.cache_stats;
        assert_eq!(s.icache_flushes, 0, "aliasing store must not flush");
        assert!(s.hit_rate() > 0.999, "hit rate {}", s.hit_rate());
    }

    #[test]
    fn tracked_accesses_count_one_walk_each() {
        use det_memory::AccessTracker;
        // With a tracker installed every access is a slow-path walk —
        // exactly one, not a failed-translate walk plus a slow walk.
        let (mut cpu, mut mem) = load(
            "
            li  r5, 0x8000
        loop:
            ldd r2, [r5+0]
            std r2, [r5+8]
            beq r0, r0, loop
            ",
        );
        mem.set_tracker(Some(AccessTracker::new()));
        assert_eq!(cpu.run(&mut mem, Some(3_000)), VmExit::OutOfBudget);
        let s = cpu.cache_stats;
        assert_eq!(
            s.pages_walked, s.slow_accesses,
            "every tracked access walks exactly once"
        );
        assert_eq!(s.fills(), 0, "nothing may be cached while tracked");
    }

    #[test]
    fn page_crossing_access_takes_slow_path_correctly() {
        let (mut cpu, mut mem) = load(
            "
            li  r5, 0x8ffc
            li  r1, 0x1122334455667788
            std r1, [r5+0]
            ldd r2, [r5+0]
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[2], 0x1122334455667788);
        assert_eq!(mem.read_u64(0x8ffc).unwrap(), 0x1122334455667788);
        assert!(cpu.cache_stats.slow_accesses >= 2);
    }
}
