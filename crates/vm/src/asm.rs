//! A small two-pass assembler for the det-vm ISA.
//!
//! Supports labels, numeric and label branch targets, the `li`
//! pseudo-instruction (expanding to a minimal `ldi`/`ldih` chain for
//! any 64-bit constant), register aliases (`sp` = r15, `lr` = r14),
//! and the data directives `.word`, `.quad`, `.zero`, `.ascii`.
//! Comments start with `;` or `#`.

use std::collections::BTreeMap;

use crate::isa::{Insn, Opcode, encode};

/// An assembled program image.
#[derive(Clone, Debug)]
pub struct Image {
    /// Raw little-endian bytes, loaded at address 0 by convention.
    pub bytes: Vec<u8>,
    /// Label name → byte offset.
    pub labels: BTreeMap<String, u64>,
    /// Entry point: the `_start` label if defined, else 0.
    pub entry: u64,
}

/// Assembly failure with a 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `src` into an [`Image`].
///
/// # Examples
///
/// ```
/// let img = det_vm::assemble("ldi r1, 1\nhalt").unwrap();
/// assert_eq!(img.bytes.len(), 8);
/// ```
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let mut items: Vec<(usize, Item)> = Vec::new();
    let mut labels: BTreeMap<String, u64> = BTreeMap::new();
    let mut offset: u64 = 0;

    // Pass 1: parse, size, and collect labels.
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(p) = line.find([';', '#']) {
            line = &line[..p];
        }
        let mut rest = line.trim();
        // Leading labels (possibly several).
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                break;
            }
            if labels.insert(name.to_string(), offset).is_some() {
                return Err(err(line_no, format!("duplicate label `{name}`")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let item = parse_item(line_no, rest)?;
        offset += item.size();
        items.push((line_no, item));
    }

    // Pass 2: encode.
    let mut bytes = Vec::with_capacity(offset as usize);
    for (line_no, item) in items {
        let at = bytes.len() as u64;
        match item {
            Item::Insn(tmpl) => {
                let insn = tmpl.resolve(line_no, at, &labels)?;
                bytes.extend_from_slice(&encode(insn).to_le_bytes());
            }
            Item::Li { rd, value } => {
                for insn in li_sequence(rd, value) {
                    bytes.extend_from_slice(&encode(insn).to_le_bytes());
                }
            }
            Item::Word(vals) => {
                for v in vals {
                    bytes.extend_from_slice(&(v as u32).to_le_bytes());
                }
            }
            Item::Quad(vals) => {
                for v in vals {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            Item::Zero(n) => bytes.extend(std::iter::repeat_n(0u8, n as usize)),
            Item::Ascii(s) => bytes.extend_from_slice(s.as_bytes()),
        }
    }

    let entry = labels.get("_start").copied().unwrap_or(0);
    Ok(Image {
        bytes,
        labels,
        entry,
    })
}

/// Computes the minimal `ldi`/`ldih` chain loading `value` into `rd`.
pub(crate) fn li_sequence(rd: u8, value: u64) -> Vec<Insn> {
    let n = li_len(value);
    let mut out = Vec::with_capacity(n);
    let top_shift = 12 * (n - 1);
    let top = ((value as i64) >> top_shift) as i16;
    out.push(Insn::new(Opcode::Ldi, rd, 0, 0, top));
    for k in (0..n - 1).rev() {
        let chunk = ((value >> (12 * k)) & 0xfff) as i16;
        out.push(Insn::new(Opcode::Ldih, rd, 0, 0, chunk));
    }
    out
}

/// Number of instructions `li` needs for `value`.
fn li_len(value: u64) -> usize {
    for n in 1..=6usize {
        let shift = 12 * (n - 1);
        let top = (value as i64) >> shift;
        if (-2048..=2047).contains(&top) {
            return n;
        }
    }
    6
}

enum Item {
    Insn(Template),
    Li { rd: u8, value: u64 },
    Word(Vec<u64>),
    Quad(Vec<u64>),
    Zero(u64),
    Ascii(String),
}

impl Item {
    fn size(&self) -> u64 {
        match self {
            Item::Insn(_) => 4,
            Item::Li { value, .. } => 4 * li_len(*value) as u64,
            Item::Word(v) => 4 * v.len() as u64,
            Item::Quad(v) => 8 * v.len() as u64,
            Item::Zero(n) => *n,
            Item::Ascii(s) => s.len() as u64,
        }
    }
}

/// An instruction with a possibly unresolved branch target.
struct Template {
    op: Opcode,
    rd: u8,
    rs: u8,
    rt: u8,
    imm: ImmSpec,
}

enum ImmSpec {
    Lit(i64),
    /// Word displacement from the *next* instruction to a label.
    Rel(String),
}

impl Template {
    fn resolve(
        self,
        line: usize,
        at: u64,
        labels: &BTreeMap<String, u64>,
    ) -> Result<Insn, AsmError> {
        let imm = match self.imm {
            ImmSpec::Lit(v) => v,
            ImmSpec::Rel(name) => {
                let target = *labels
                    .get(&name)
                    .ok_or_else(|| err(line, format!("undefined label `{name}`")))?;
                (target as i64 - (at as i64 + 4)) / 4
            }
        };
        let range_ok = if self.op == Opcode::Ldih {
            (0..=4095).contains(&imm)
        } else {
            (-2048..=2047).contains(&imm)
        };
        if !range_ok {
            return Err(err(line, format!("immediate {imm} out of 12-bit range")));
        }
        Ok(Insn::new(self.op, self.rd, self.rs, self.rt, imm as i16))
    }
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().expect("nonempty").is_ascii_digit()
}

fn parse_item(line: usize, text: &str) -> Result<Item, AsmError> {
    let (head, tail) = match text.find(char::is_whitespace) {
        Some(p) => (&text[..p], text[p..].trim()),
        None => (text, ""),
    };
    let mnemonic = head.to_ascii_lowercase();

    if let Some(directive) = mnemonic.strip_prefix('.') {
        return parse_directive(line, directive, tail);
    }

    if mnemonic == "li" {
        let ops = split_operands(tail);
        if ops.len() != 2 {
            return Err(err(line, "li needs `rd, value`"));
        }
        let rd = parse_reg(line, &ops[0])?;
        let value = parse_int(line, &ops[1])? as u64;
        return Ok(Item::Li { rd, value });
    }
    if mnemonic == "mov" {
        // mov rd, rs  =>  ori rd, rs, 0.
        let ops = split_operands(tail);
        if ops.len() != 2 {
            return Err(err(line, "mov needs `rd, rs`"));
        }
        return Ok(Item::Insn(Template {
            op: Opcode::Ori,
            rd: parse_reg(line, &ops[0])?,
            rs: parse_reg(line, &ops[1])?,
            rt: 0,
            imm: ImmSpec::Lit(0),
        }));
    }

    let op = Opcode::from_mnemonic(&mnemonic)
        .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
    let ops = split_operands(tail);
    let t = build_template(line, op, &ops)?;
    Ok(Item::Insn(t))
}

fn parse_directive(line: usize, directive: &str, tail: &str) -> Result<Item, AsmError> {
    match directive {
        "word" => {
            let vals = split_operands(tail)
                .iter()
                .map(|s| parse_int(line, s).map(|v| v as u64))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Item::Word(vals))
        }
        "quad" => {
            let vals = split_operands(tail)
                .iter()
                .map(|s| parse_int(line, s).map(|v| v as u64))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Item::Quad(vals))
        }
        "zero" => Ok(Item::Zero(parse_int(line, tail.trim())? as u64)),
        "ascii" => {
            let t = tail.trim();
            if t.len() < 2 || !t.starts_with('"') || !t.ends_with('"') {
                return Err(err(line, ".ascii needs a double-quoted string"));
            }
            Ok(Item::Ascii(t[1..t.len() - 1].to_string()))
        }
        other => Err(err(line, format!("unknown directive `.{other}`"))),
    }
}

fn build_template(line: usize, op: Opcode, ops: &[String]) -> Result<Template, AsmError> {
    use Opcode::*;
    let need = |n: usize| {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{} expects {n} operands, got {}", op.mnemonic(), ops.len()),
            ))
        }
    };
    let reg = |s: &str| parse_reg(line, s);
    let imm_or_label = |s: &str| -> Result<ImmSpec, AsmError> {
        if let Ok(v) = parse_int(line, s) {
            Ok(ImmSpec::Lit(v))
        } else if is_ident(s) {
            Ok(ImmSpec::Rel(s.to_string()))
        } else {
            Err(err(line, format!("bad immediate or label `{s}`")))
        }
    };
    match op {
        Nop | Halt => {
            need(0)?;
            Ok(Template {
                op,
                rd: 0,
                rs: 0,
                rt: 0,
                imm: ImmSpec::Lit(0),
            })
        }
        Sys => {
            need(1)?;
            Ok(Template {
                op,
                rd: 0,
                rs: 0,
                rt: 0,
                imm: ImmSpec::Lit(parse_int(line, &ops[0])?),
            })
        }
        Add | Sub | Mul | Div | Mod | Divu | Modu | And | Or | Xor | Shl | Shr | Sar | Slt
        | Sltu | Fadd | Fsub | Fmul | Fdiv | Flt | Feq | Fle => {
            need(3)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: reg(&ops[1])?,
                rt: reg(&ops[2])?,
                imm: ImmSpec::Lit(0),
            })
        }
        Fsqrt | Cvtif | Cvtfi => {
            need(2)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: reg(&ops[1])?,
                rt: 0,
                imm: ImmSpec::Lit(0),
            })
        }
        Addi | Andi | Ori | Xori | Shli | Shri | Sari | Slti | Muli => {
            need(3)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: reg(&ops[1])?,
                rt: 0,
                imm: ImmSpec::Lit(parse_int(line, &ops[2])?),
            })
        }
        Ldi => {
            need(2)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: 0,
                rt: 0,
                imm: ImmSpec::Lit(parse_int(line, &ops[1])?),
            })
        }
        Ldih => {
            need(2)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: 0,
                rt: 0,
                imm: ImmSpec::Lit(parse_int(line, &ops[1])?),
            })
        }
        Ldb | Ldh | Ldw | Ldd | Stb | Sth | Stw | Std => {
            need(2)?;
            let (rs, disp) = parse_mem_operand(line, &ops[1])?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs,
                rt: 0,
                imm: ImmSpec::Lit(disp),
            })
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            need(3)?;
            Ok(Template {
                op,
                rd: 0,
                rs: reg(&ops[0])?,
                rt: reg(&ops[1])?,
                imm: imm_or_label(&ops[2])?,
            })
        }
        Jal => {
            need(2)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: 0,
                rt: 0,
                imm: imm_or_label(&ops[1])?,
            })
        }
        Jalr => {
            need(3)?;
            Ok(Template {
                op,
                rd: reg(&ops[0])?,
                rs: reg(&ops[1])?,
                rt: 0,
                imm: ImmSpec::Lit(parse_int(line, &ops[2])?),
            })
        }
    }
}

fn split_operands(s: &str) -> Vec<String> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(|p| p.trim().to_string()).collect()
}

fn parse_reg(line: usize, s: &str) -> Result<u8, AsmError> {
    let s = s.trim();
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "sp" => return Ok(15),
        "lr" => return Ok(14),
        _ => {}
    }
    if let Some(num) = lower.strip_prefix('r') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 16 {
                return Ok(n);
            }
        }
    }
    Err(err(line, format!("bad register `{s}`")))
}

fn parse_int(line: usize, s: &str) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let parsed = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else if let Some(bin) = body.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).map(|v| v as i64)
    } else {
        body.parse::<i64>().or_else(|_| {
            // Allow full-range u64 decimal literals.
            body.parse::<u64>().map(|v| v as i64)
        })
    };
    match parsed {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => Err(err(line, format!("bad integer `{s}`"))),
    }
}

/// Parses `[rN+disp]`, `[rN-disp]`, or `[rN]`.
fn parse_mem_operand(line: usize, s: &str) -> Result<(u8, i64), AsmError> {
    let s = s.trim();
    if !s.starts_with('[') || !s.ends_with(']') {
        return Err(err(line, format!("bad memory operand `{s}`")));
    }
    let inner = s[1..s.len() - 1].trim();
    // Find a +/- separating register and displacement (not a leading sign).
    let mut split_at = None;
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            split_at = Some(i);
            break;
        }
    }
    match split_at {
        None => Ok((parse_reg(line, inner)?, 0)),
        Some(i) => {
            let reg = parse_reg(line, inner[..i].trim())?;
            let sign = if inner.as_bytes()[i] == b'-' { -1 } else { 1 };
            let disp = parse_int(line, inner[i + 1..].trim())?;
            Ok((reg, sign * disp))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{decode, disassemble};

    #[test]
    fn labels_and_branches() {
        let img = assemble(
            "
        start:
            ldi r1, 3
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            beq r0, r0, start
            halt
            ",
        )
        .unwrap();
        assert_eq!(img.labels["start"], 0);
        assert_eq!(img.labels["loop"], 4);
        // `bne` at offset 8 targets 4: disp = (4 - 12)/4 = -2.
        let w = u32::from_le_bytes(img.bytes[8..12].try_into().unwrap());
        assert_eq!(decode(w).unwrap().imm, -2);
        // `beq` at offset 12 targets 0: disp = (0 - 16)/4 = -4.
        let w = u32::from_le_bytes(img.bytes[12..16].try_into().unwrap());
        assert_eq!(decode(w).unwrap().imm, -4);
    }

    #[test]
    fn li_small_is_single_insn() {
        let img = assemble("li r1, 42").unwrap();
        assert_eq!(img.bytes.len(), 4);
        let img = assemble("li r1, -2048").unwrap();
        assert_eq!(img.bytes.len(), 4);
    }

    #[test]
    fn li_expansion_correct_for_edge_values() {
        use crate::interp::{Cpu, VmExit};
        use det_memory::{AddressSpace, Perm, Region};
        for v in [
            0u64,
            1,
            2047,
            2048,
            0x8000,
            0xffff_ffff,
            0x1234_5678_9abc_def0,
            u64::MAX,
            i64::MIN as u64,
            0x7fff_ffff_ffff_ffff,
        ] {
            let src = format!("li r1, {v}\nhalt");
            let img = assemble(&src).unwrap();
            let mut mem = AddressSpace::new();
            mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
            mem.write(0, &img.bytes).unwrap();
            let mut cpu = Cpu::new();
            assert_eq!(cpu.run(&mut mem, None), VmExit::Halt, "value {v:#x}");
            assert_eq!(cpu.regs.gpr[1], v, "value {v:#x}");
        }
    }

    #[test]
    fn mem_operand_forms() {
        for (src, rs, imm) in [
            ("ldd r1, [r2]", 2u8, 0i16),
            ("ldd r1, [r2+16]", 2, 16),
            ("ldd r1, [r2 - 8]", 2, -8),
            ("ldd r1, [sp+0]", 15, 0),
        ] {
            let img = assemble(src).unwrap();
            let w = u32::from_le_bytes(img.bytes[0..4].try_into().unwrap());
            let i = decode(w).unwrap();
            assert_eq!((i.rs, i.imm), (rs, imm), "{src}");
        }
    }

    #[test]
    fn data_directives() {
        let img = assemble(
            "
            .word 1, 2
            .quad 0xdeadbeef
            .zero 3
            .ascii \"hi\"
            ",
        )
        .unwrap();
        assert_eq!(img.bytes.len(), 4 + 4 + 8 + 3 + 2);
        assert_eq!(&img.bytes[0..4], &1u32.to_le_bytes());
        assert_eq!(&img.bytes[8..16], &0xdeadbeefu64.to_le_bytes());
        assert_eq!(&img.bytes[19..21], b"hi");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\nnop").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));

        let e = assemble("beq r1, r0, nowhere").unwrap_err();
        assert!(e.msg.contains("undefined label"));

        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.msg.contains("duplicate label"));

        let e = assemble("addi r1, r2, 99999").unwrap_err();
        assert!(e.msg.contains("out of 12-bit range"));

        let e = assemble("add r99, r1, r2").unwrap_err();
        assert!(e.msg.contains("bad register"));
    }

    #[test]
    fn entry_defaults_and_start_label() {
        assert_eq!(assemble("nop").unwrap().entry, 0);
        let img = assemble("nop\n_start: halt").unwrap();
        assert_eq!(img.entry, 4);
    }

    #[test]
    fn comments_ignored() {
        let img = assemble("; full line\nnop # trailing\n  # another\n").unwrap();
        assert_eq!(img.bytes.len(), 4);
    }

    #[test]
    fn disassemble_assembled_roundtrip() {
        let src = "add r1, r2, r3";
        let img = assemble(src).unwrap();
        let w = u32::from_le_bytes(img.bytes[0..4].try_into().unwrap());
        assert_eq!(disassemble(decode(w).unwrap()), src);
    }
}
