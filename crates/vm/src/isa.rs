//! Instruction set: encoding, decoding, and disassembly.
//!
//! Fixed 32-bit words:
//!
//! ```text
//! | opcode:8 | rd:4 | rs:4 | rt:4 | imm:12 |
//! ```
//!
//! `imm` is sign-extended except for [`Opcode::Ldih`], which treats it
//! as raw bits. Branch displacements are in words relative to the next
//! instruction.

/// Decoded instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Insn {
    /// Operation.
    pub op: Opcode,
    /// Destination register (or store-source for `St*`).
    pub rd: u8,
    /// First source register.
    pub rs: u8,
    /// Second source register.
    pub rt: u8,
    /// 12-bit immediate, sign-extended at decode.
    pub imm: i16,
}

impl Insn {
    /// Convenience constructor.
    pub fn new(op: Opcode, rd: u8, rs: u8, rt: u8, imm: i16) -> Insn {
        Insn {
            op,
            rd,
            rs,
            rt,
            imm,
        }
    }
}

macro_rules! opcodes {
    ($($name:ident = $val:expr, $mnem:expr;)*) => {
        /// Operation codes.
        ///
        /// Grouped as: system (`Nop`/`Halt`/`Sys`), register ALU,
        /// immediate ALU, loads/stores, branches/jumps, and IEEE-754
        /// double-precision float ops over the integer register file.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = $mnem]
                $name = $val,
            )*
        }

        impl Opcode {
            /// Returns the opcode for an encoded byte, if defined.
            #[inline]
            pub fn from_u8(v: u8) -> Option<Opcode> {
                match v {
                    $($val => Some(Opcode::$name),)*
                    _ => None,
                }
            }

            /// Returns the assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$name => $mnem,)*
                }
            }

            /// Returns the opcode for a mnemonic, if defined.
            pub fn from_mnemonic(m: &str) -> Option<Opcode> {
                match m {
                    $($mnem => Some(Opcode::$name),)*
                    _ => None,
                }
            }

            /// All defined opcodes (for property tests and fuzzing).
            pub const ALL: &'static [Opcode] = &[$(Opcode::$name,)*];
        }
    };
}

opcodes! {
    Nop = 0x00, "nop";
    Halt = 0x01, "halt";
    Sys = 0x02, "sys";

    Add = 0x10, "add";
    Sub = 0x11, "sub";
    Mul = 0x12, "mul";
    Div = 0x13, "div";
    Mod = 0x14, "mod";
    Divu = 0x15, "divu";
    Modu = 0x16, "modu";
    And = 0x17, "and";
    Or = 0x18, "or";
    Xor = 0x19, "xor";
    Shl = 0x1a, "shl";
    Shr = 0x1b, "shr";
    Sar = 0x1c, "sar";
    Slt = 0x1d, "slt";
    Sltu = 0x1e, "sltu";

    Addi = 0x20, "addi";
    Andi = 0x21, "andi";
    Ori = 0x22, "ori";
    Xori = 0x23, "xori";
    Shli = 0x24, "shli";
    Shri = 0x25, "shri";
    Sari = 0x26, "sari";
    Slti = 0x27, "slti";
    Muli = 0x28, "muli";
    Ldi = 0x29, "ldi";
    Ldih = 0x2a, "ldih";

    Ldb = 0x30, "ldb";
    Ldh = 0x31, "ldh";
    Ldw = 0x32, "ldw";
    Ldd = 0x33, "ldd";
    Stb = 0x34, "stb";
    Sth = 0x35, "sth";
    Stw = 0x36, "stw";
    Std = 0x37, "std";

    Beq = 0x40, "beq";
    Bne = 0x41, "bne";
    Blt = 0x42, "blt";
    Bge = 0x43, "bge";
    Bltu = 0x44, "bltu";
    Bgeu = 0x45, "bgeu";
    Jal = 0x46, "jal";
    Jalr = 0x47, "jalr";

    Fadd = 0x50, "fadd";
    Fsub = 0x51, "fsub";
    Fmul = 0x52, "fmul";
    Fdiv = 0x53, "fdiv";
    Fsqrt = 0x54, "fsqrt";
    Cvtif = 0x55, "cvtif";
    Cvtfi = 0x56, "cvtfi";
    Flt = 0x57, "flt";
    Feq = 0x58, "feq";
    Fle = 0x59, "fle";
}

/// Instruction decoding failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The undefined opcode byte.
    pub opcode: u8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal opcode {:#04x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction into a 32-bit word.
pub fn encode(i: Insn) -> u32 {
    debug_assert!(i.rd < 16 && i.rs < 16 && i.rt < 16);
    debug_assert!((-2048..=2047).contains(&i.imm) || i.op == Opcode::Ldih);
    ((i.op as u32) << 24)
        | ((i.rd as u32 & 0xf) << 20)
        | ((i.rs as u32 & 0xf) << 16)
        | ((i.rt as u32 & 0xf) << 12)
        | (i.imm as u32 & 0xfff)
}

/// Decodes a 32-bit word into an instruction.
///
/// Inlined: this is the decoded-instruction cache's fill path; a hit
/// skips it entirely.
#[inline]
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let op_byte = (word >> 24) as u8;
    let op = Opcode::from_u8(op_byte).ok_or(DecodeError { opcode: op_byte })?;
    let raw_imm = (word & 0xfff) as u16;
    let imm = if op == Opcode::Ldih {
        raw_imm as i16
    } else {
        // Sign-extend 12 bits.
        ((raw_imm << 4) as i16) >> 4
    };
    Ok(Insn {
        op,
        rd: ((word >> 20) & 0xf) as u8,
        rs: ((word >> 16) & 0xf) as u8,
        rt: ((word >> 12) & 0xf) as u8,
        imm,
    })
}

/// Renders an instruction in assembler syntax.
pub fn disassemble(i: Insn) -> String {
    use Opcode::*;
    let m = i.op.mnemonic();
    match i.op {
        Nop | Halt => m.to_string(),
        Sys => format!("{m} {}", i.imm),
        Add | Sub | Mul | Div | Mod | Divu | Modu | And | Or | Xor | Shl | Shr | Sar | Slt
        | Sltu | Fadd | Fsub | Fmul | Fdiv | Flt | Feq | Fle => {
            format!("{m} r{}, r{}, r{}", i.rd, i.rs, i.rt)
        }
        Fsqrt | Cvtif | Cvtfi => format!("{m} r{}, r{}", i.rd, i.rs),
        Addi | Andi | Ori | Xori | Shli | Shri | Sari | Slti | Muli => {
            format!("{m} r{}, r{}, {}", i.rd, i.rs, i.imm)
        }
        Ldi => format!("{m} r{}, {}", i.rd, i.imm),
        Ldih => format!("{m} r{}, {:#x}", i.rd, i.imm as u16 & 0xfff),
        Ldb | Ldh | Ldw | Ldd => format!("{m} r{}, [r{}{:+}]", i.rd, i.rs, i.imm),
        Stb | Sth | Stw | Std => format!("{m} r{}, [r{}{:+}]", i.rd, i.rs, i.imm),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            format!("{m} r{}, r{}, {}", i.rs, i.rt, i.imm)
        }
        Jal => format!("{m} r{}, {}", i.rd, i.imm),
        Jalr => format!("{m} r{}, r{}, {}", i.rd, i.rs, i.imm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_opcodes() {
        for &op in Opcode::ALL {
            let i = Insn::new(op, 3, 7, 11, -5);
            let i = if op == Opcode::Ldih {
                Insn { imm: 0x7ab, ..i }
            } else {
                i
            };
            let d = decode(encode(i)).expect("decodes");
            assert_eq!(d, i, "opcode {op:?}");
        }
    }

    #[test]
    fn imm_sign_extension() {
        let i = Insn::new(Opcode::Addi, 1, 2, 0, -2048);
        assert_eq!(decode(encode(i)).unwrap().imm, -2048);
        let i = Insn::new(Opcode::Addi, 1, 2, 0, 2047);
        assert_eq!(decode(encode(i)).unwrap().imm, 2047);
    }

    #[test]
    fn ldih_imm_is_raw() {
        let i = Insn::new(Opcode::Ldih, 1, 0, 0, 0xfff_u16 as i16 & 0xfff);
        let d = decode(encode(i)).unwrap();
        assert_eq!(d.imm as u16 & 0xfff, 0xfff);
    }

    #[test]
    fn illegal_opcode_rejected() {
        assert_eq!(decode(0xff00_0000), Err(DecodeError { opcode: 0xff }));
        assert_eq!(decode(0x0300_0000), Err(DecodeError { opcode: 0x03 }));
    }

    #[test]
    fn mnemonic_lookup_roundtrips() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn disassembly_examples() {
        assert_eq!(
            disassemble(Insn::new(Opcode::Add, 1, 2, 3, 0)),
            "add r1, r2, r3"
        );
        assert_eq!(
            disassemble(Insn::new(Opcode::Ldd, 4, 15, 0, -8)),
            "ldd r4, [r15-8]"
        );
        assert_eq!(
            disassemble(Insn::new(Opcode::Beq, 0, 1, 2, 6)),
            "beq r1, r2, 6"
        );
        assert_eq!(disassemble(Insn::new(Opcode::Halt, 0, 0, 0, 0)), "halt");
    }
}
