//! The registered corpus of VM-coded programs.
//!
//! Every VM assembly source the repository runs repeatedly — the
//! paper-workload kernels behind the MIPS table, the conformance
//! scenarios' guests, and the microbench loops — lives here, in the
//! crate that owns the ISA, so the benches (`det-bench`), the
//! conformance registry (`det-conform`), and the static analyzer's
//! soundness gate (`det-analyze`) all exercise the *same* programs.
//! The gate in particular iterates [`PROGRAMS`]: for each entry it
//! must prove the statically predicted write footprint a superset of
//! the pages the interpreter actually dirties.
//!
//! Programs run in the **standard sandbox**: code loaded at address 0
//! inside a zero-filled RW window `[0, 0x10000)`, plus a far window
//! `[0x100000, 0x180000)` for the TLB-hostile stride loop. Kernels
//! marked as looping run forever and are bounded by an instruction
//! budget; the rest halt (or `sys`-exit) on their own.
//!
//! Every kernel is written in the **analyzable pointer idiom** that
//! `det-analyze`'s interval/stride abstract interpreter can bound:
//! loops branch on the marching pointer itself (`bltu rP, rEnd`)
//! instead of on a detached counter, companion pointers are derived
//! affinely from the guarded one (`add r6, r5, r11`), and the
//! quicksort guest `andi`-masks every data-dependent index to the
//! sandbox window before dereferencing it. Concretely the masks and
//! guards are no-ops (in-range data stays in range); abstractly they
//! are what lets an interval analysis prove a tight page footprint —
//! the same belt-and-braces bounding a deterministic sandbox applies
//! to untrusted code.

/// A registered VM program: a name, its assembly source, and an
/// instruction budget that reaches steady state (for looping kernels)
/// or completion (for halting guests).
#[derive(Clone, Copy, Debug)]
pub struct VmProgram {
    /// Short stable name (keys bench ids and gate report rows).
    pub name: &'static str,
    /// Assembly source for [`crate::assemble`].
    pub src: &'static str,
    /// Instruction budget for a standalone differential run.
    pub budget: u64,
}

/// The synthetic ALU loop `vm_interpreter_mips` has always measured:
/// pure fetch/decode/dispatch, no data memory.
pub const ALU_LOOP: &str = "
    ldi r1, 0
loop:
    addi r1, r1, 1
    addi r2, r1, 3
    xor  r3, r2, r1
    beq r0, r0, loop
";

/// fft: the butterfly — two f64 loads, add/sub/scale, two stores,
/// marching a pair of pointers across a 2 KiB array. Loops bound the
/// marching pointer directly; `b[]` is derived affinely from `a[]`.
pub const FFT_KERNEL: &str = "
    li   r5, 0x8000        ; a[]
    li   r11, 0x400        ; b[] - a[]
    li   r12, 0x8400       ; a[] end
    ldi  r1, 3
    cvtif r10, r1          ; twiddle-ish scale 3.0
init:
    addi r1, r1, 1
    cvtif r2, r1
    add  r6, r5, r11
    std  r2, [r5+0]
    std  r2, [r6+0]
    addi r5, r5, 8
    bltu r5, r12, init
outer:
    li   r5, 0x8000
pass:
    add  r6, r5, r11
    ldd  r2, [r5+0]        ; x = a[i]
    ldd  r3, [r6+0]        ; y = b[i]
    fmul r4, r3, r10       ; t = y * w
    fadd r8, r2, r4        ; a' = x + t
    fsub r9, r2, r4        ; b' = x - t
    std  r8, [r5+0]
    std  r9, [r6+0]
    addi r5, r5, 8
    bltu r5, r12, pass
    beq  r0, r0, outer
";

/// matmult: the dot-product inner loop — two f64 loads, fused
/// multiply-accumulate, one store per row.
pub const MATMULT_KERNEL: &str = "
    li   r5, 0x8000        ; row of A
    li   r11, 0x800        ; column of B - row of A
    li   r12, 0x8800       ; row end
    ldi  r1, 0
init:
    addi r1, r1, 1
    cvtif r2, r1
    add  r6, r5, r11
    std  r2, [r5+0]
    std  r2, [r6+0]
    addi r5, r5, 8
    bltu r5, r12, init
outer:
    li   r5, 0x8000
    ldi  r9, 0
    cvtif r9, r9           ; acc = 0.0
dot:
    add  r6, r5, r11
    ldd  r2, [r5+0]        ; A[i][k]
    ldd  r3, [r6+0]        ; B[k][j]
    fmul r4, r2, r3
    fadd r9, r9, r4        ; acc += A*B
    addi r5, r5, 8
    bltu r5, r12, dot
    li   r6, 0x9000
    std  r9, [r6+0]        ; C[i][j] = acc
    beq  r0, r0, outer
";

/// md5: the round function's shape — load a word, mix with rotates
/// (shl/shr/or), adds and xors against round constants, store back.
pub const MD5_KERNEL: &str = "
    li   r5, 0x8000        ; 64-word block
    li   r12, 0x8100       ; block end
    ldi  r1, 0
init:
    addi r1, r1, 1
    muli r2, r1, 0x61d
    stw  r2, [r5+0]
    addi r5, r5, 4
    bltu r5, r12, init
    li   r10, 0x67452301   ; state a
    li   r11, 0xefcdab89   ; state b
outer:
    li   r5, 0x8000
round:
    ldw  r2, [r5+0]        ; m = block[i]
    add  r3, r10, r2       ; a + m
    li   r4, 0x5a827999
    add  r3, r3, r4        ; + k
    shli r8, r3, 7         ; rotl 7
    shri r9, r3, 57
    or   r3, r8, r9
    xor  r3, r3, r11       ; mix with b
    add  r10, r11, r3      ; rotate state
    or   r11, r3, r0
    stw  r3, [r5+0]        ; write the lane back
    addi r5, r5, 4
    bltu r5, r12, round
    beq  r0, r0, outer
";

/// A TLB-hostile load loop: alternating accesses 64 pages apart map to
/// the same direct-mapped TLB index with different tags, so every load
/// misses — the miss-path microbench.
pub const TLB_MISS_STRIDE: &str = "
    li   r5, 0x100000
    li   r6, 0x140000      ; +64 pages: same TLB set, different page
loop:
    ldd  r1, [r5+0]
    ldd  r2, [r6+0]
    beq  r0, r0, loop
";

/// The shared quicksort body: LCG-fill 64 u64s at `0x8000`, iterative
/// in-place quicksort with an explicit range stack at `0x9000`, then
/// an unsigned sortedness sweep leaving a 0/1 flag at `0x8800`.
/// Data-dependent indices are masked to the sandbox window before
/// every dereference (see the module docs).
macro_rules! qsort_body {
    ($tail:expr) => {
        concat!(
            "
    li   r1, 0x8000        ; a[]
    ldi  r2, 64            ; n
    li   r4, 0x243f6a8885a308d3   ; seed
    li   r13, 0x9000       ; range-stack base
fill:
    ldi  r3, 0
floop:
    li   r10, 0x5851f42d4c957f2d  ; LCG multiplier
    mul  r4, r4, r10
    li   r10, 0x14057b7ef767814f  ; LCG increment
    add  r4, r4, r10
    shli r6, r3, 3
    add  r6, r6, r1
    std  r4, [r6+0]
    addi r3, r3, 1
    blt  r3, r2, floop
    ldi  r15, 0            ; stack byte offset
    ldi  r3, 0             ; push (0, n-1)
    addi r5, r2, -1
    add  r12, r13, r15
    std  r3, [r12+0]
    std  r5, [r12+8]
    addi r15, r15, 16
qloop:
    beq  r15, r0, done
    addi r15, r15, -16
    andi r15, r15, 1023    ; mask: stack stays inside its page
    add  r12, r13, r15
    ldd  r3, [r12+0]       ; lo
    ldd  r5, [r12+8]       ; hi
    andi r3, r3, 127       ; mask: indices stay inside the window
    andi r5, r5, 127
    shli r6, r5, 3
    add  r6, r6, r1
    ldd  r7, [r6+0]        ; pivot = a[hi]
    addi r8, r3, -1        ; i = lo - 1
    mov  r9, r3            ; j = lo
part:
    bge  r9, r5, pdone
    shli r6, r9, 3
    add  r6, r6, r1
    ldd  r10, [r6+0]       ; a[j]
    bgeu r10, r7, pskip
    addi r8, r8, 1
    andi r8, r8, 127
    shli r11, r8, 3
    add  r11, r11, r1
    ldd  r12, [r11+0]      ; swap a[i] <-> a[j]
    std  r10, [r11+0]
    std  r12, [r6+0]
pskip:
    addi r9, r9, 1
    beq  r0, r0, part
pdone:
    addi r8, r8, 1         ; p = i + 1
    andi r8, r8, 127
    shli r11, r8, 3
    add  r11, r11, r1
    ldd  r12, [r11+0]
    std  r7, [r11+0]       ; a[p] = pivot
    shli r6, r5, 3
    add  r6, r6, r1
    std  r12, [r6+0]       ; a[hi] = old a[p]
    addi r10, r8, -1       ; push (lo, p-1) when non-trivial
    bge  r3, r10, skip1
    andi r15, r15, 1023
    add  r12, r13, r15
    std  r3, [r12+0]
    std  r10, [r12+8]
    addi r15, r15, 16
skip1:
    addi r10, r8, 1        ; push (p+1, hi) when non-trivial
    bge  r10, r5, skip2
    andi r15, r15, 1023
    add  r12, r13, r15
    std  r10, [r12+0]
    std  r5, [r12+8]
    addi r15, r15, 16
skip2:
    beq  r0, r0, qloop
done:
    ldi  r12, 1            ; sortedness sweep
    ldi  r3, 1
check:
    bge  r3, r2, fin
    shli r6, r3, 3
    add  r6, r6, r1
    ldd  r10, [r6+0]
    ldd  r11, [r6-8]
    bgeu r10, r11, cok
    ldi  r12, 0
cok:
    addi r3, r3, 1
    beq  r0, r0, check
fin:
    li   r6, 0x8800
    std  r12, [r6+0]       ; 1 = sorted
",
            $tail
        )
    };
}

/// qsort, looping: each round re-fills the array from the evolving LCG
/// seed and re-sorts — the branchy, data-dependent MIPS kernel.
pub const QSORT_KERNEL: &str = qsort_body!("    beq  r0, r0, fill\n");

/// qsort, halting: one fill/sort/verify pass, then `halt` — the
/// conformance-scenario guest and the gate's halting witness.
pub const QSORT_SORT: &str = qsort_body!("    halt\n");

/// The `vm_sandbox` scenario's untrusted guest: an unbounded Fibonacci
/// loop the kernel preempts at exact instruction counts.
pub const FIB_PREEMPT: &str = "
    ldi r3, 0
    ldi r4, 1
    ldi r5, 0
loop:
    add r6, r3, r4
    mov r3, r4
    mov r4, r6
    addi r5, r5, 1
    beq r0, r0, loop
";

/// The `vm_counter_stream` scenario's guest: streams counter values to
/// the parent through a `sys`/`Ret` loop, then halts. The slot pointer
/// is re-established after every `sys` — the kernel may rewrite any
/// register across a syscall, so the analyzer havocs the whole file
/// there; reloading the pointer keeps the footprint bounded.
pub const COUNTER_STREAM: &str = "
    ldi r1, 0
loop:
    li  r5, 0x2000
    addi r1, r1, 1
    std r1, [r5+0]
    sys 0
    li  r6, 4
    blt r1, r6, loop
    halt
";

/// Every registered VM program, in stable order. The static analyzer's
/// soundness gate runs each entry differentially: predicted write
/// footprint ⊇ observed dirty pages, predicted read footprint ⊇
/// observed touched-read pages (fetches included), on a standalone run
/// of `budget` instructions in the standard sandbox.
pub const PROGRAMS: &[VmProgram] = &[
    VmProgram {
        name: "alu_loop",
        src: ALU_LOOP,
        budget: 20_000,
    },
    VmProgram {
        name: "fft",
        src: FFT_KERNEL,
        budget: 50_000,
    },
    VmProgram {
        name: "matmult",
        src: MATMULT_KERNEL,
        budget: 50_000,
    },
    VmProgram {
        name: "md5",
        src: MD5_KERNEL,
        budget: 50_000,
    },
    VmProgram {
        name: "tlb_stride",
        src: TLB_MISS_STRIDE,
        budget: 20_000,
    },
    VmProgram {
        name: "qsort",
        src: QSORT_KERNEL,
        budget: 120_000,
    },
    VmProgram {
        name: "qsort_sort",
        src: QSORT_SORT,
        budget: 120_000,
    },
    VmProgram {
        name: "fib_preempt",
        src: FIB_PREEMPT,
        budget: 10_000,
    },
    VmProgram {
        name: "counter_stream",
        src: COUNTER_STREAM,
        budget: 1_000,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cpu, VmExit, assemble};
    use det_memory::{AddressSpace, Perm, Region};

    fn sandbox(src: &str) -> (Cpu, AddressSpace) {
        let image = assemble(src).expect("corpus program assembles");
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
        mem.map_zero(Region::new(0x100000, 0x180000), Perm::RW)
            .unwrap();
        mem.write(0, &image.bytes).unwrap();
        (Cpu::new(), mem)
    }

    #[test]
    fn every_program_assembles_and_runs_trap_free() {
        for p in PROGRAMS {
            let (mut cpu, mut mem) = sandbox(p.src);
            let exit = cpu.run(&mut mem, Some(p.budget));
            assert!(
                matches!(exit, VmExit::OutOfBudget | VmExit::Halt | VmExit::Sys(_)),
                "{}: unexpected exit {exit:?}",
                p.name
            );
        }
    }

    #[test]
    fn qsort_sorts_and_halts() {
        let (mut cpu, mut mem) = sandbox(QSORT_SORT);
        assert_eq!(cpu.run(&mut mem, Some(120_000)), VmExit::Halt);
        assert_eq!(mem.read_u64(0x8800).unwrap(), 1, "sortedness flag");
        let mut prev = 0u64;
        let mut distinct = 0;
        for i in 0..64u64 {
            let v = mem.read_u64(0x8000 + i * 8).unwrap();
            assert!(v >= prev, "a[{i}] out of order");
            if v != prev {
                distinct += 1;
            }
            prev = v;
        }
        assert!(distinct > 32, "LCG fill should be near-distinct");
    }

    #[test]
    fn qsort_kernel_loops_forever() {
        let (mut cpu, mut mem) = sandbox(QSORT_KERNEL);
        assert_eq!(cpu.run(&mut mem, Some(300_000)), VmExit::OutOfBudget);
        // Several full rounds completed: the flag is set and the array
        // page has been rewritten many times.
        assert_eq!(mem.read_u64(0x8800).unwrap(), 1);
    }
}
