//! A deterministic RISC-style virtual CPU for the Determinator
//! reproduction.
//!
//! The paper's kernel enforces determinism on *arbitrary* user code:
//! unprivileged spaces have no instruction that can observe real time,
//! scheduling, or any other nondeterministic input, and the kernel can
//! preempt a space after a precise number of instructions (the
//! PA-RISC/ReVirt "instruction limit" of §3.2, used by the
//! deterministic scheduler of §4.5).
//!
//! We cannot run native x86 rings in a library, so this crate provides
//! the equivalent: a small 64-bit ISA whose only effects are on the
//! space's private registers ([`Regs`]) and its private
//! [`det_memory::AddressSpace`], interpreted with an exact
//! architectural instruction counter and mid-stream preemption
//! ([`Cpu::run`] with a budget). A program that wants anything beyond
//! pure computation must execute `SYS`, which hands control to the
//! kernel — exactly the paper's trap-or-syscall containment argument.
//!
//! # Examples
//!
//! ```
//! use det_memory::{AddressSpace, Perm, Region};
//! use det_vm::{assemble, Cpu, VmExit};
//!
//! let image = assemble(
//!     "
//!     li   r1, 6
//!     li   r2, 7
//!     mul  r1, r1, r2
//!     halt
//!     ",
//! )
//! .unwrap();
//! let mut mem = AddressSpace::new();
//! mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
//! mem.write(0, &image.bytes).unwrap();
//!
//! let mut cpu = Cpu::new();
//! let exit = cpu.run(&mut mem, None);
//! assert_eq!(exit, VmExit::Halt);
//! assert_eq!(cpu.regs.gpr[1], 42);
//! ```

mod asm;
pub mod corpus;
mod interp;
mod isa;
mod regs;

pub use asm::{AsmError, Image, assemble};
pub use interp::{Cpu, CpuCacheStats, VmExit, VmTrap};
pub use isa::{DecodeError, Insn, Opcode, decode, disassemble, encode};
pub use regs::Regs;
