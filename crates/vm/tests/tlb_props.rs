//! Differential property suite for the VM's software TLB + predecoded
//! instruction cache (the PR-2-style merge-oracle technique, applied to
//! the interpreter): every random program is executed twice, once with
//! the fast path ([`Cpu::new`]) and once with it disabled
//! ([`Cpu::slow_path`] — the original interpreter), under identical
//! preemption quanta and identical externally-applied kernel operations
//! (writes, permission flips, snapshot + merge, fresh mappings, virtual
//! copies, tracker install/removal). The two executions must agree on
//! *everything observable*: every exit (including traps and their
//! order), every register, the retired-instruction count, the final
//! memory digest, the dirty write-set, merge statistics and conflicts
//! under all three conflict policies, and the access tracker's page
//! log. The caches are allowed to change performance only.

use det_memory::{AccessTracker, AddressSpace, ConflictPolicy, Perm, Region};
use det_vm::{Cpu, Insn, Opcode, VmExit, encode};
use proptest::prelude::*;

const CODE: Region = Region {
    start: 0,
    end: 0x2000,
};
const DATA: Region = Region {
    start: 0x8000,
    end: 0xa000,
};
const RO_PAGE: Region = Region {
    start: 0xb000,
    end: 0xc000,
};
/// Everything the programs and mutation ops can touch.
const WORLD: Region = Region {
    start: 0,
    end: 0x10000,
};

/// Maps a generated tuple to an instruction word. The mapping is a
/// pure function, so a failing case's seed reproduces exactly.
fn gen_word((k, rd, rs, rt, raw): (u8, u8, u8, u8, u16)) -> u32 {
    use Opcode::*;
    let alu = [Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, Slt, Sltu];
    let alui = [
        Addi, Andi, Ori, Xori, Shli, Shri, Sari, Slti, Muli, Ldi, Ldih,
    ];
    let lds = [Ldb, Ldh, Ldw, Ldd];
    let sts = [Stb, Sth, Stw, Std];
    let brs = [Beq, Bne, Blt, Bge, Bltu, Bgeu];
    let divs = [Div, Mod, Divu, Modu];
    // Destinations avoid the base registers r14/r15 so loads and
    // stores keep landing in interesting places.
    let rd_safe = rd % 14;
    let imm12 = (raw & 0xfff) as i16;
    let simm = (imm12 << 4) >> 4; // sign-extend 12 bits
    match k {
        0..=2 => encode(Insn::new(alu[raw as usize % alu.len()], rd_safe, rs, rt, 0)),
        3..=4 => {
            let op = alui[raw as usize % alui.len()];
            let imm = if op == Ldih { imm12 & 0xfff } else { simm };
            encode(Insn::new(op, rd_safe, rs, 0, imm))
        }
        // Loads/stores against the data base r15 (dense, in-bounds).
        5 => encode(Insn::new(
            lds[raw as usize % lds.len()],
            rd_safe,
            15,
            0,
            (raw & 0x7ff) as i16,
        )),
        6 => encode(Insn::new(
            sts[raw as usize % sts.len()],
            rd_safe,
            15,
            0,
            (raw & 0x7ff) as i16,
        )),
        // Against r14, parked at a page boundary next to an unmapped
        // hole and the read-only page: page-crossing accesses, faults.
        7 => {
            let op = if raw & 1 == 0 {
                lds[raw as usize % lds.len()]
            } else {
                sts[raw as usize % sts.len()]
            };
            encode(Insn::new(op, rd_safe, 14, 0, (raw & 0x1f) as i16 - 8))
        }
        8 => encode(Insn::new(
            brs[raw as usize % brs.len()],
            0,
            rs,
            rt,
            (raw % 9) as i16 - 4,
        )),
        9 => encode(Insn::new(Jal, 13, 0, 0, (raw % 8) as i16)),
        10 => encode(Insn::new(
            divs[raw as usize % divs.len()],
            rd_safe,
            rs,
            rt,
            0,
        )),
        _ => {
            if raw % 7 == 0 {
                0xfe00_0000 | raw as u32 // Illegal opcode: decode trap.
            } else if raw % 5 == 0 {
                encode(Insn::new(Halt, 0, 0, 0, 0))
            } else {
                encode(Insn::new(Sys, 0, 0, 0, (raw & 0xf) as i16))
            }
        }
    }
}

fn arb_program() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        (0u8..12, 0u8..16, 0u8..16, 0u8..16, 0u16..4096).prop_map(gen_word),
        4..96,
    )
}

fn build(words: &[u32]) -> (Cpu, AddressSpace) {
    let mut mem = AddressSpace::new();
    mem.map_zero(CODE, Perm::RW).unwrap();
    mem.map_zero(DATA, Perm::RW).unwrap();
    mem.map_zero(RO_PAGE, Perm::R).unwrap();
    for (i, w) in words.iter().enumerate() {
        mem.write_u32((i * 4) as u64, *w).unwrap();
    }
    // Recognizable nonzero data so merges have bytes to move.
    for i in 0..64u64 {
        mem.write_u64(DATA.start + i * 97 % 0x1ff8, i.wrapping_mul(0x9e37))
            .unwrap();
    }
    let mut cpu = Cpu::new();
    cpu.regs.gpr[15] = DATA.start;
    cpu.regs.gpr[14] = DATA.end - 4; // Boundary: hole above, data below.
    (cpu, mem)
}

/// One externally-applied kernel operation between quanta. Applied
/// identically to both executions; returns a digest-like summary so
/// the test can also assert the *operation's* outcome matched.
///
/// `sibling` is a structurally-shared fork of the space that persists
/// across quanta: while it lives, every page-table leaf of `mem` is
/// shared (`AddressSpace::clone` bumps leaf refcounts without bumping
/// the generation), so the VM's cached *write* translations stay
/// tag-valid but must dynamically miss on redemption — the DESIGN.md
/// §5 leaf-exclusivity rule. A fast path that wrote in place anyway
/// would corrupt the sibling, which the caller detects by comparing
/// sibling digests between the fast and slow executions.
fn apply_op(
    op: u8,
    mem: &mut AddressSpace,
    sibling: &mut Option<AddressSpace>,
    policy: ConflictPolicy,
) -> String {
    match op % 8 {
        // External content write (device staging, parent copy-out).
        // May fail if an earlier op write-protected the page; the
        // outcome (either way) must match between executions.
        0 => format!(
            "write {:?}",
            mem.write(DATA.start + 0x123, b"external-write")
        ),
        // Snapshot + three-way merge into a cloned parent: the dirty
        // write-set and generation interplay the TLB must survive.
        1 => {
            let mut parent = mem.clone();
            let snap = mem.snapshot();
            let w = mem.write_u64(DATA.start + 0x800, 0xC0FFEE);
            let merged = parent.try_merge_from(mem, &snap, DATA, policy);
            let merged = merged.map(|(s, c)| (w, s, c));
            let merged = merged.map(|(w, stats, conflict)| {
                format!(
                    "w {w:?} copied {} conflict {conflict:?} parent {:?}",
                    stats.bytes_copied,
                    parent.content_digest()
                )
            });
            format!("merge {merged:?}")
        }
        // Write-protect the first data page...
        2 => {
            mem.set_perm(Region::new(0x8000, 0x9000), Perm::R).unwrap();
            "protect".into()
        }
        // ...and un-protect it again.
        3 => {
            mem.set_perm(Region::new(0x8000, 0x9000), Perm::RW).unwrap();
            "unprotect".into()
        }
        // Fresh zero mapping over the hole the r14 accesses probe.
        4 => {
            mem.map_zero(Region::new(0xa000, 0xb000), Perm::RW).unwrap();
            "map".into()
        }
        // Virtual copy: either a page-granular alias of the data pages
        // over the code region's tail (frames become shared, write
        // translations must COW), or — for high op bytes — a
        // leaf-congruent wholesale self-copy that swaps in the clone's
        // identical 512-page leaf (structural-sharing fast path:
        // generation bump, bulk dirty reassignment).
        5 => {
            if op >= 128 {
                let leaf = Region::new(0, (det_memory::PAGES_PER_LEAF * 4096) as u64);
                let installed = mem.copy_from(&mem.clone(), leaf, 0).unwrap();
                format!("leafcopy {installed}")
            } else {
                let installed = mem.copy_from(&mem.clone(), DATA, 0x6000).unwrap();
                format!("copy {installed}")
            }
        }
        // Fork a long-lived sibling: all leaves shared from here on,
        // with *no* generation bump — cached write translations must
        // start missing via the leaf-exclusivity check alone.
        6 => {
            *sibling = Some(mem.clone());
            format!("fork {}", mem.page_count())
        }
        // Drop the sibling, reporting its digest: it must be identical
        // between the fast and slow executions (it was forked at the
        // same point and never written — any difference means a cached
        // write leaked through a shared leaf).
        _ => {
            let d = sibling.take().map(|s| format!("{:?}", s.content_digest()));
            format!("drop {d:?}")
        }
    }
}

/// Runs the same schedule on fast and slow CPUs, asserting equality at
/// every observation point. Returns (exits, final digest) for extra
/// checks.
fn differential_run(
    words: &[u32],
    quanta: &[u64],
    ops: &[u8],
    policy: ConflictPolicy,
    tracked: bool,
) -> Result<(), TestCaseError> {
    let (mut fast, mut mem_f) = build(words);
    let (_, mut mem_s) = build(words);
    let mut slow = Cpu::slow_path();
    slow.regs = fast.regs;
    let (tf, ts) = (AccessTracker::new(), AccessTracker::new());
    if tracked {
        mem_f.set_tracker(Some(tf.clone()));
        mem_s.set_tracker(Some(ts.clone()));
    }
    let (mut sib_f, mut sib_s) = (None, None);
    for (i, &q) in quanta.iter().enumerate() {
        let ef = fast.run(&mut mem_f, Some(q));
        let es = slow.run(&mut mem_s, Some(q));
        prop_assert_eq!(ef, es, "exit diverged at quantum {}", i);
        prop_assert_eq!(fast.regs, slow.regs, "registers diverged at quantum {}", i);
        prop_assert_eq!(fast.insn_count, slow.insn_count);
        if matches!(ef, VmExit::Halt | VmExit::Trap(_)) {
            break;
        }
        if let Some(&op) = ops.get(i) {
            let rf = apply_op(op, &mut mem_f, &mut sib_f, policy);
            let rs = apply_op(op, &mut mem_s, &mut sib_s, policy);
            prop_assert_eq!(rf, rs, "kernel op diverged at quantum {}", i);
        }
    }
    prop_assert_eq!(mem_f.content_digest(), mem_s.content_digest());
    prop_assert_eq!(mem_f.dirty_vpns_in(WORLD), mem_s.dirty_vpns_in(WORLD));
    // A surviving sibling shares leaves with the executed space; its
    // contents must be unperturbed by the fast path (identical to the
    // slow execution's sibling).
    match (sib_f, sib_s) {
        (Some(a), Some(b)) => prop_assert_eq!(a.content_digest(), b.content_digest()),
        (None, None) => {}
        _ => unreachable!("identical schedules fork identically"),
    }
    if tracked {
        prop_assert_eq!(tf.pages_read(), ts.pages_read());
        prop_assert_eq!(tf.pages_written(), ts.pages_written());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(220))]

    /// The headline differential: random programs, random preemption
    /// quanta, random mid-run kernel operations, all three conflict
    /// policies — fast and slow paths byte-identical throughout.
    #[test]
    fn fast_path_is_semantically_invisible(
        words in arb_program(),
        quanta in proptest::collection::vec(1u64..80, 1..10),
        ops in proptest::collection::vec(0u8..=255, 0..10),
        pol in 0u8..3,
    ) {
        let policy = match pol {
            0 => ConflictPolicy::Strict,
            1 => ConflictPolicy::BenignSameValue,
            _ => ConflictPolicy::ChildWins,
        };
        differential_run(&words, &quanta, &ops, policy, false)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same differential with an access tracker installed: the fast
    /// path must disable itself and leave an identical page log.
    #[test]
    fn tracker_log_is_identical(
        words in arb_program(),
        quanta in proptest::collection::vec(1u64..80, 1..8),
        ops in proptest::collection::vec(0u8..=255, 0..8),
    ) {
        differential_run(&words, &quanta, &ops, ConflictPolicy::Strict, true)?;
    }

    /// Mid-run tracker install/removal: translations cached while
    /// untracked must not leak accesses past a later tracker.
    #[test]
    fn tracker_installed_mid_run(
        words in arb_program(),
        q in 1u64..200,
    ) {
        let (mut fast, mut mem_f) = build(&words);
        let (_, mut mem_s) = build(&words);
        let mut slow = Cpu::slow_path();
        slow.regs = fast.regs;
        // Phase 1: untracked (fast path warms its caches).
        let ef = fast.run(&mut mem_f, Some(q));
        let es = slow.run(&mut mem_s, Some(q));
        prop_assert_eq!(ef, es);
        if !matches!(ef, VmExit::Halt | VmExit::Trap(_)) {
            // Phase 2: tracker installed on both.
            let (tf, ts) = (AccessTracker::new(), AccessTracker::new());
            mem_f.set_tracker(Some(tf.clone()));
            mem_s.set_tracker(Some(ts.clone()));
            let ef = fast.run(&mut mem_f, Some(q));
            let es = slow.run(&mut mem_s, Some(q));
            prop_assert_eq!(ef, es);
            prop_assert_eq!(tf.pages_read(), ts.pages_read());
            prop_assert_eq!(tf.pages_written(), ts.pages_written());
            // Phase 3: tracker removed, fast path resumes.
            mem_f.set_tracker(None);
            mem_s.set_tracker(None);
            let ef = fast.run(&mut mem_f, Some(q));
            let es = slow.run(&mut mem_s, Some(q));
            prop_assert_eq!(ef, es);
        }
        prop_assert_eq!(fast.regs, slow.regs);
        prop_assert_eq!(mem_f.content_digest(), mem_s.content_digest());
    }
}

// ---------------------------------------------------------------------
// Stat-level lock-in: the reduction the TLB exists for, as hard
// deterministic counters rather than wall-clock.
// ---------------------------------------------------------------------

/// The `vm_interpreter_mips` bench loop plus a load/store pair: the
/// shape of every paper workload's inner loop.
fn hot_loop() -> Vec<u32> {
    use Opcode::*;
    vec![
        encode(Insn::new(Ldi, 1, 0, 0, 0)),   // 0
        encode(Insn::new(Addi, 1, 1, 0, 1)),  // 4  loop:
        encode(Insn::new(Std, 1, 15, 0, 64)), // 8
        encode(Insn::new(Ldd, 2, 15, 0, 64)), // 12
        encode(Insn::new(Addi, 3, 2, 0, 3)),  // 16
        encode(Insn::new(Beq, 0, 0, 0, -5)),  // 20 → 4
    ]
}

#[test]
fn tlb_stats_lock_in_the_reduction() {
    let words = hot_loop();
    let (mut cpu, mut mem) = build(&words);
    let n = 250_000u64;
    assert_eq!(cpu.run(&mut mem, Some(n)), VmExit::OutOfBudget);
    let s = cpu.cache_stats;
    // Pages walked per retired instruction: one walk per *page*, not
    // per access — a handful total for a loop touching two pages.
    assert!(
        s.pages_walked < 16,
        "pages walked {} for {} instructions",
        s.pages_walked,
        n
    );
    assert!(s.hit_rate() > 0.9999, "hit rate {}", s.hit_rate());
    // Every instruction fetch after warmup is an icache hit, and every
    // load/store hits its TLB.
    assert!(s.icache_hits > n - 16);
    assert!(s.tlb_read_hits > n / 6 - 16);
    assert!(s.tlb_write_hits > n / 6 - 16);
    // The identical counters on a second identical run (determinism of
    // the stats themselves — the kernel charges virtual time by them).
    let (mut cpu2, mut mem2) = build(&words);
    assert_eq!(cpu2.run(&mut mem2, Some(n)), VmExit::OutOfBudget);
    assert_eq!(cpu2.cache_stats, s);
}

/// Locked wall-clock regression guard: the fast path must stay at
/// least 2× the slow (pre-TLB) interpreter on the bench loop. The
/// measured margin at introduction was ~5-9×, so 2× holds through
/// host noise; min-of-3 interleaved runs per attempt plus a few whole
/// retries (a true regression fails every attempt, transient host
/// load does not persist across all of them) keep CI from flaking.
/// The deterministic counter-based lock-in above guards the
/// optimization itself; this pins the wall-clock claim.
#[test]
fn fast_path_at_least_2x_slow_path() {
    fn best_ns_per_insn(fast: bool, n: u64) -> f64 {
        let words = hot_loop();
        let mut best = f64::MAX;
        for _ in 0..3 {
            let (mut cpu, mut mem) = build(&words);
            if !fast {
                cpu = Cpu::slow_path();
                cpu.regs.gpr[15] = DATA.start;
            }
            // Warm up, then measure.
            assert_eq!(cpu.run(&mut mem, Some(n / 4)), VmExit::OutOfBudget);
            let start = std::time::Instant::now();
            assert_eq!(cpu.run(&mut mem, Some(n)), VmExit::OutOfBudget);
            best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
        }
        best
    }
    let mut last = (0.0, 0.0);
    for attempt in 0..4 {
        // Grow the sample on retries so later attempts average over
        // more of the noise instead of re-rolling the same dice.
        let n = 400_000u64 << attempt;
        let fast = best_ns_per_insn(true, n);
        let slow = best_ns_per_insn(false, n);
        if fast * 2.0 <= slow {
            return;
        }
        last = (fast, slow);
    }
    panic!(
        "fast path {:.1} ns/insn is not 2x faster than slow path {:.1} ns/insn \
         (4 attempts, rising sample sizes)",
        last.0, last.1
    );
}
