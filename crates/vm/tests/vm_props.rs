//! Property tests of the VM: encode/decode bijectivity, assembler
//! round trips, ALU semantics against reference arithmetic, and exact
//! determinism/preemption of random programs.

use det_memory::{AddressSpace, Perm, Region};
use det_vm::{Cpu, Insn, Opcode, Regs, VmExit, assemble, decode, disassemble, encode};
use proptest::prelude::*;

fn arb_valid_insn() -> impl Strategy<Value = Insn> {
    (
        proptest::sample::select(Opcode::ALL.to_vec()),
        0u8..16,
        0u8..16,
        0u8..16,
        -2048i16..=2047,
    )
        .prop_map(|(op, rd, rs, rt, imm)| {
            let imm = if op == Opcode::Ldih { imm & 0xfff } else { imm };
            Insn::new(op, rd, rs, rt, imm)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode ∘ decode is the identity on valid instructions.
    #[test]
    fn encode_decode_roundtrip(i in arb_valid_insn()) {
        prop_assert_eq!(decode(encode(i)).unwrap(), i);
    }

    /// Disassembly output reassembles to the identical word (for
    /// non-branch instructions, whose operands print literally).
    #[test]
    fn disasm_asm_roundtrip(i in arb_valid_insn()) {
        use Opcode::*;
        prop_assume!(!matches!(
            i.op,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Ldb | Ldh | Ldw | Ldd
                | Stb | Sth | Stw | Std | Ldih
        ));
        // Nop/halt/sys render without their (ignored) operand fields;
        // normalize them so the round trip is well-defined.
        let i = match i.op {
            Nop | Halt => Insn::new(i.op, 0, 0, 0, 0),
            Sys => Insn::new(i.op, 0, 0, 0, i.imm.max(0)),
            _ => i,
        };
        let text = disassemble(i);
        let img = assemble(&text).unwrap();
        let word = u32::from_le_bytes(img.bytes[0..4].try_into().unwrap());
        // Unused operand fields (e.g. the imm of a 3-register ALU op)
        // are not printable, so compare the *semantic* rendering of
        // the reassembled word, not the raw bits.
        prop_assert_eq!(disassemble(decode(word).unwrap()), text);
    }

    /// Register ALU ops match reference Rust arithmetic.
    #[test]
    fn alu_reference_semantics(a in any::<u64>(), b in any::<u64>()) {
        let cases: Vec<(Opcode, Option<u64>)> = vec![
            (Opcode::Add, Some(a.wrapping_add(b))),
            (Opcode::Sub, Some(a.wrapping_sub(b))),
            (Opcode::Mul, Some(a.wrapping_mul(b))),
            (Opcode::And, Some(a & b)),
            (Opcode::Or, Some(a | b)),
            (Opcode::Xor, Some(a ^ b)),
            (Opcode::Shl, Some(a.wrapping_shl(b as u32))),
            (Opcode::Shr, Some(a.wrapping_shr(b as u32))),
            (Opcode::Sltu, Some((a < b) as u64)),
            (Opcode::Slt, Some(((a as i64) < (b as i64)) as u64)),
            (Opcode::Divu, a.checked_div(b)),
            (Opcode::Modu, a.checked_rem(b)),
        ];
        for (op, expect) in cases {
            let mut mem = AddressSpace::new();
            mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
            mem.write_u32(0, encode(Insn::new(op, 3, 1, 2, 0))).unwrap();
            mem.write_u32(4, encode(Insn::new(Opcode::Halt, 0, 0, 0, 0)))
                .unwrap();
            let mut cpu = Cpu::new();
            cpu.regs.gpr[1] = a;
            cpu.regs.gpr[2] = b;
            let exit = cpu.run(&mut mem, None);
            match expect {
                Some(v) => {
                    prop_assert_eq!(exit, VmExit::Halt, "{:?}", op);
                    prop_assert_eq!(cpu.regs.gpr[3], v, "{:?}", op);
                }
                None => {
                    let trapped = matches!(exit, VmExit::Trap(_));
                    prop_assert!(trapped, "{:?} should trap", op);
                }
            }
        }
    }

    /// Any random word sequence executes deterministically: two CPUs
    /// stepping the same memory agree on every architectural state.
    #[test]
    fn random_programs_deterministic(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let build = || {
            let mut mem = AddressSpace::new();
            mem.map_zero(Region::new(0, 0x2000), Perm::RW).unwrap();
            for (i, w) in words.iter().enumerate() {
                mem.write_u32((i * 4) as u64, *w).unwrap();
            }
            (Cpu::new(), mem)
        };
        let (mut c1, mut m1) = build();
        let (mut c2, mut m2) = build();
        let e1 = c1.run(&mut m1, Some(10_000));
        let e2 = c2.run(&mut m2, Some(10_000));
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(c1.regs, c2.regs);
        prop_assert_eq!(c1.insn_count, c2.insn_count);
        prop_assert_eq!(m1.content_digest(), m2.content_digest());
    }

    /// Chopping execution into arbitrary quanta never changes the
    /// outcome (preemption transparency).
    #[test]
    fn arbitrary_quanta_transparent(
        words in proptest::collection::vec(any::<u32>(), 1..48),
        quanta in proptest::collection::vec(1u64..97, 1..64),
    ) {
        let build = || {
            let mut mem = AddressSpace::new();
            mem.map_zero(Region::new(0, 0x2000), Perm::RW).unwrap();
            for (i, w) in words.iter().enumerate() {
                mem.write_u32((i * 4) as u64, *w).unwrap();
            }
            (Cpu::new(), mem)
        };
        let total: u64 = quanta.iter().sum();
        let (mut c1, mut m1) = build();
        let e1 = c1.run(&mut m1, Some(total));

        let (mut c2, mut m2) = build();
        let mut e2 = VmExit::OutOfBudget;
        for q in &quanta {
            e2 = c2.run(&mut m2, Some(*q));
            if e2 != VmExit::OutOfBudget {
                break;
            }
        }
        // If the chopped run ended early on halt/trap/sys, the
        // unchopped run saw the same exit; if it ran out of budget,
        // both consumed exactly `total` instructions.
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(c1.regs, c2.regs);
        prop_assert_eq!(c1.insn_count, c2.insn_count);
        prop_assert_eq!(m1.content_digest(), m2.content_digest());
    }

    /// The `li` pseudo-instruction loads any 64-bit constant.
    #[test]
    fn li_loads_any_constant(v in any::<u64>()) {
        let img = assemble(&format!("li r7, {v}\nhalt")).unwrap();
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
        mem.write(0, &img.bytes).unwrap();
        let mut cpu = Cpu::new();
        prop_assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        prop_assert_eq!(cpu.regs.gpr[7], v);
    }

    /// Memory stores then loads round-trip at every width/alignment.
    #[test]
    fn load_store_roundtrip(v in any::<u64>(), off in 0u64..4088) {
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x3000), Perm::RW).unwrap();
        let prog = format!(
            "li r5, {addr}\nli r1, {v}\nstd r1, [r5+0]\nldd r2, [r5+0]\nldw r3, [r5+0]\nldb r4, [r5+0]\nhalt",
            addr = 0x2000 + off,
        );
        let img = assemble(&prog).unwrap();
        mem.write(0, &img.bytes).unwrap();
        let mut cpu = Cpu::new();
        prop_assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        prop_assert_eq!(cpu.regs.gpr[2], v);
        prop_assert_eq!(cpu.regs.gpr[3], v & 0xffff_ffff);
        prop_assert_eq!(cpu.regs.gpr[4], v & 0xff);
    }
}

/// Regs sanity outside proptest: default is all-zero at pc 0.
#[test]
fn fresh_cpu_state() {
    let c = Cpu::new();
    assert_eq!(c.regs, Regs::default());
    assert_eq!(c.insn_count, 0);
}
