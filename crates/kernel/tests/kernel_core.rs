//! Kernel lifecycle, rendezvous, and determinism tests.

use det_kernel::{
    ConflictPolicy, CopySpec, DeviceId, GetSpec, IoMode, Kernel, KernelConfig, KernelError,
    MemError, Perm, Program, PutSpec, Region, Regs, RunOutcome, SpaceCtx, StopReason, TrapKind,
    VmDispatch,
};

fn kernel() -> Kernel {
    Kernel::new(KernelConfig::default())
}

/// Runs a kernel scenario on a helper thread and fails the test if it
/// does not finish within the deadline — liveness regressions in the
/// rendezvous protocol must show up as test failures, not CI hangs.
fn with_watchdog<F>(f: F) -> RunOutcome
where
    F: FnOnce() -> RunOutcome + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(std::time::Duration::from_secs(60))
        .expect("rendezvous deadlock: scenario did not finish under the watchdog")
}

const R: Region = Region {
    start: 0x1000,
    end: 0x3000,
};

/// Sets up a two-page RW region in the root with a few markers.
fn setup_root(ctx: &mut SpaceCtx) -> det_kernel::Result<()> {
    ctx.mem_mut().map_zero(R, Perm::RW)?;
    ctx.mem_mut().write_u64(0x1000, 0xAAAA)?;
    Ok(())
}

#[test]
fn child_halts_with_exit_code() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new().program(Program::native(|_| Ok(42))).start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.code, 42);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 1);
    assert_eq!(out.stats.threads_spawned, 1);
}

#[test]
fn get_on_unstarted_child_sees_zero_state() {
    let out = kernel().run(|ctx| {
        let r = ctx.get(5, GetSpec::new().regs())?;
        assert_eq!(r.stop, StopReason::Unstarted);
        assert_eq!(r.regs.unwrap(), Regs::default());
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 1);
}

#[test]
fn start_without_program_fails() {
    let out = kernel().run(|ctx| {
        let e = ctx.put(0, PutSpec::new().start()).unwrap_err();
        assert_eq!(e, KernelError::NoProgram);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn copy_into_child_and_back() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    let v = c.mem().read_u64(0x1000)?;
                    c.mem_mut().write_u64(0x1008, v + 1)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .start(),
        )?;
        ctx.get(
            0,
            GetSpec::new().copy(CopySpec {
                src: Region::new(0x1000, 0x2000),
                dst: 0x8000,
            }),
        )?;
        assert_eq!(ctx.mem().read_u64(0x8008)?, 0xAAAB);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.stats.pages_copied >= 3);
}

#[test]
fn ret_rendezvous_roundtrips() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.ret(1)?; // First checkpoint.
                    c.ret(2)?; // Second.
                    Ok(3)
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 1));
        // Resume; child rets again.
        ctx.put(0, PutSpec::new().start())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 2));
        // Resume to completion.
        ctx.put(0, PutSpec::new().start())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Halted, 3));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.rets, 2);
}

#[test]
fn snapshot_merge_joins_disjoint_writes() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        for i in 0..4u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        c.mem_mut().write_u64(0x2000 + i * 8, 100 + i)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(R))
                    .snap()
                    .start(),
            )?;
        }
        for i in 0..4u64 {
            let r = ctx.get(i, GetSpec::new().merge(R))?;
            assert!(r.merge.is_some());
        }
        for i in 0..4u64 {
            assert_eq!(ctx.mem().read_u64(0x2000 + i * 8)?, 100 + i);
        }
        // Root's own marker survived.
        assert_eq!(ctx.mem().read_u64(0x1000)?, 0xAAAA);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.merges, 4);
    assert_eq!(out.stats.conflicts, 0);
}

#[test]
fn write_write_conflict_detected_at_second_join() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        c.mem_mut().write_u64(0x2000, 100 + i)?; // Same address!
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(R))
                    .snap()
                    .start(),
            )?;
        }
        ctx.get(0, GetSpec::new().merge(R))?;
        let e = ctx.get(1, GetSpec::new().merge(R)).unwrap_err();
        match e {
            KernelError::Conflict(c) => assert_eq!(c.addr, 0x2000),
            other => panic!("expected conflict, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.conflicts, 1);
}

#[test]
fn merge_over_unaligned_region_fails_and_parent_is_intact() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x2000, 0xBEEF)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        // Wait for the child, then attempt a misaligned merge.
        ctx.get(0, GetSpec::new())?;
        let before = ctx.mem().content_digest();
        let e = ctx
            .get(0, GetSpec::new().merge(Region::new(0x1000, 0x1800)))
            .unwrap_err();
        assert!(matches!(
            e,
            KernelError::Mem(MemError::Misaligned { addr: 0x1800 })
        ));
        // The failed join left the parent byte-identical, and the
        // child is still joinable over the aligned region.
        assert_eq!(ctx.mem().content_digest(), before);
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0xBEEF);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn merge_into_read_only_parent_mapping_fails_and_parent_is_intact() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x2000, 0xF00D)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new())?;
        // The parent downgrades the page the child wrote to read-only:
        // the join must fail up front (validate-before-write) instead
        // of silently writing through the protection.
        ctx.mem_mut()
            .set_perm(Region::new(0x2000, 0x3000), Perm::R)?;
        let before = ctx.mem().content_digest();
        let e = ctx.get(0, GetSpec::new().merge(R)).unwrap_err();
        assert!(matches!(
            e,
            KernelError::Mem(MemError::PermDenied { addr: 0x2000, .. })
        ));
        assert_eq!(ctx.mem().content_digest(), before);
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0);
        // Restoring the mapping lets the same join complete.
        ctx.mem_mut()
            .set_perm(Region::new(0x2000, 0x3000), Perm::RW)?;
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0xF00D);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn merge_without_snapshot_is_rejected() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_| Ok(0)))
                .copy(CopySpec::mirror(R))
                .start(),
        )?;
        let e = ctx.get(0, GetSpec::new().merge(R)).unwrap_err();
        assert_eq!(e, KernelError::NoSnapshot);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn child_trap_reported_to_parent() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    // Unmapped access faults.
                    c.mem().read_u8(0xdead_0000)?;
                    Ok(0)
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        match r.stop {
            StopReason::Trap(TrapKind::Mem(MemError::Unmapped { .. })) => {}
            other => panic!("expected unmapped trap, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.traps, 1);
}

#[test]
fn child_panic_reported_as_trap() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_| panic!("boom")))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Trap(TrapKind::Panic));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn grandchildren_compose() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    // The child forks its own children.
                    for i in 0..2u64 {
                        c.put(
                            i,
                            PutSpec::new()
                                .program(Program::native(move |cc| {
                                    cc.mem_mut().write_u64(0x2100 + i * 8, 7 + i)?;
                                    Ok(0)
                                }))
                                .copy(CopySpec::mirror(R))
                                .snap()
                                .start(),
                        )?;
                    }
                    for i in 0..2u64 {
                        c.get(i, GetSpec::new().merge(R))?;
                    }
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2100)?, 7);
        assert_eq!(ctx.mem().read_u64(0x2108)?, 8);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 3);
}

#[test]
fn vclock_rendezvous_takes_max() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.charge(1_000_000)?; // 1 ms of work.
                    Ok(0)
                }))
                .start(),
        )?;
        let before = ctx.vclock_ns();
        ctx.get(0, GetSpec::new())?;
        let after = ctx.vclock_ns();
        assert!(after >= 1_000_000, "parent absorbed child's clock: {after}");
        assert!(after >= before);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.vclock_ns >= 1_000_000);
}

#[test]
fn parallel_children_overlap_in_virtual_time() {
    // Two children, 1ms each: makespan ~1ms (parallel), not 2ms.
    let out = kernel().run(|ctx| {
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.charge(1_000_000)?;
                        Ok(0)
                    }))
                    .start(),
            )?;
        }
        for i in 0..2u64 {
            ctx.get(i, GetSpec::new())?;
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.vclock_ns >= 1_000_000);
    assert!(
        out.vclock_ns < 1_200_000,
        "children should overlap: {}",
        out.vclock_ns
    );
}

#[test]
fn sequential_children_accumulate_virtual_time() {
    // Fork-join one at a time: makespan ~2ms.
    let out = kernel().run(|ctx| {
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.charge(1_000_000)?;
                        Ok(0)
                    }))
                    .start(),
            )?;
            ctx.get(i, GetSpec::new())?;
        }
        Ok(0)
    });
    assert!(out.vclock_ns >= 2_000_000);
}

#[test]
fn native_limit_preempts_at_charge_points() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    for _ in 0..10 {
                        c.charge(1_000)?; // 10 µs total.
                    }
                    Ok(0)
                }))
                .start_limited(3_500),
        )?;
        let mut preemptions = 0;
        loop {
            let r = ctx.get(0, GetSpec::new())?;
            match r.stop {
                StopReason::LimitReached => {
                    preemptions += 1;
                    ctx.put(0, PutSpec::new().start_limited(3_500))?;
                }
                StopReason::Halted => break,
                other => panic!("unexpected stop {other:?}"),
            }
        }
        assert!(preemptions >= 2, "got {preemptions}");
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.stats.limit_preemptions >= 2);
}

#[test]
fn vm_child_runs_and_halts() {
    let image = det_vm::assemble(
        "
        ldi r2, 21
        add r2, r2, r2
        li  r5, 0x2000
        std r2, [r5+0]
        ldi r1, 9
        halt
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                .regs(Regs::at_entry(0))
                .snap()
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new().merge(Region::new(0, 0x3000)))?;
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.code, 9);
        assert_eq!(ctx.mem().read_u64(0x2000)?, 42);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.vm_instructions, 7); // li = 2 insns here.
}

#[test]
fn vm_sys_ret_and_resume() {
    let image = det_vm::assemble(
        "
        ldi r1, 5
        sys 0
        addi r1, r1, 1
        halt
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 5));
        ctx.put(0, PutSpec::new().start())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Halted, 6));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn vm_tlb_stats_lock_in_translation_reduction() {
    // A workload-shaped loop (fetch + load + store per iteration) run
    // under the kernel: the software TLB must turn per-access page
    // walks into a handful of fills, and the reduction is locked in at
    // the stat level, not by wall-clock. Counters are deterministic —
    // asserted by the exact-equality replay below.
    let image = det_vm::assemble(
        "
        ldi r1, 0
        li  r5, 0x2000
        li  r6, 30000
    loop:
        addi r1, r1, 1
        std r1, [r5+0]
        ldd r2, [r5+0]
        blt r1, r6, loop
        halt
        ",
    )
    .unwrap();
    let run = || {
        let image = image.clone();
        kernel().run(move |ctx| {
            ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                    .regs(Regs::at_entry(0))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.stop, StopReason::Halted);
            Ok(0)
        })
    };
    let out = run();
    let s = &out.stats;
    assert!(s.vm_instructions > 100_000, "{s:?}");
    // Pages walked per retired instruction: a fraction of a percent
    // (one fill per page per generation epoch, not one per access).
    assert!(
        s.vm_pages_walked * 200 < s.vm_instructions,
        "walked {} of {} instructions",
        s.vm_pages_walked,
        s.vm_instructions
    );
    // Fetches decode once; loads and stores hit their TLBs.
    assert!(s.vm_icache_hits > s.vm_instructions - 32);
    assert!(s.vm_tlb_hits > 2 * (s.vm_instructions / 6) - 32);
    // The counters are deterministic state: a replay reproduces them
    // exactly (the cost model charges virtual time by them).
    let again = run();
    assert_eq!(s.vm_pages_walked, again.stats.vm_pages_walked);
    assert_eq!(s.vm_tlb_hits, again.stats.vm_tlb_hits);
    assert_eq!(s.vm_icache_hits, again.stats.vm_icache_hits);
    assert_eq!(out.vclock_ns, again.vclock_ns);
}

#[test]
fn vm_instruction_limit_is_exact() {
    // A counting loop; 1 ns per instruction in the default model, so a
    // limit of N ns runs exactly N instructions.
    let image = det_vm::assemble(
        "
        ldi r2, 0
    loop:
        addi r2, r2, 1
        beq r0, r0, loop
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start_limited(101),
        )?;
        let r = ctx.get(0, GetSpec::new().regs())?;
        assert_eq!(r.stop, StopReason::LimitReached);
        // 101 instructions: ldi + 50 × (addi, beq) = 101.
        assert_eq!(r.regs.unwrap().gpr[2], 50);
        // Resume for 10 more instructions: 5 more increments.
        ctx.put(0, PutSpec::new().start_limited(10))?;
        let r = ctx.get(0, GetSpec::new().regs())?;
        assert_eq!(r.regs.unwrap().gpr[2], 55);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.vm_instructions, 111);
}

#[test]
fn vm_trap_is_implicit_ret() {
    let image = det_vm::assemble(
        "
        ldi r1, 1
        ldi r2, 0
        div r3, r1, r2
        halt
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Trap(TrapKind::DivideByZero));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn tree_copy_clones_child_subtree() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        // Build child 0 with some state and a grandchild.
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x1100, 77)?;
                    c.put(9, PutSpec::new().zero(Region::new(0x4000, 0x5000)))?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .start(),
        )?;
        ctx.get(0, GetSpec::new())?;
        // Clone child 0's subtree into child 1.
        ctx.put(1, PutSpec::new().tree_from(0))?;
        let r = ctx.get(
            1,
            GetSpec::new().copy(CopySpec {
                src: Region::new(0x1000, 0x2000),
                dst: 0x9000,
            }),
        )?;
        assert_eq!(r.stop, StopReason::Unstarted);
        assert_eq!(ctx.mem().read_u64(0x9100)?, 77);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    // Root + child0 + grandchild + clone + cloned grandchild.
    assert_eq!(out.stats.spaces_created, 4);
}

#[test]
fn device_access_is_root_only() {
    let out = kernel().run(|ctx| {
        assert!(ctx.is_root());
        ctx.dev_write(DeviceId::ConsoleOut, b"root writes\n")?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    assert!(!c.is_root());
                    match c.dev_write(DeviceId::ConsoleOut, b"child writes") {
                        Err(KernelError::NotRoot) => Ok(0),
                        other => panic!("expected NotRoot, got {other:?}"),
                    }
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Halted);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console(), b"root writes\n");
}

#[test]
fn console_input_and_record_replay() {
    let run = |io: IoMode, push: bool| {
        let k = Kernel::new(KernelConfig::builder().io(io).build());
        if push {
            k.push_input(DeviceId::ConsoleIn, b"hello".to_vec());
        }
        k.run(|ctx| {
            let input = ctx.dev_read(DeviceId::ConsoleIn)?.unwrap_or_default();
            let clock = ctx.dev_read(DeviceId::Clock)?.unwrap();
            let rand = ctx.dev_read(DeviceId::Random)?.unwrap();
            ctx.dev_write(DeviceId::ConsoleOut, &input)?;
            ctx.dev_write(DeviceId::ConsoleOut, &clock)?;
            ctx.dev_write(DeviceId::ConsoleOut, &rand)?;
            Ok(0)
        })
    };
    let first = run(IoMode::Record, true);
    assert_eq!(first.io_log.events.len(), 3);
    // Replay without pushing input: identical output.
    let second = run(IoMode::Replay(first.io_log.clone()), false);
    assert_eq!(first.console(), second.console());
}

#[test]
fn replay_divergence_detected() {
    let first = kernel().run(|ctx| {
        ctx.dev_read(DeviceId::Clock)?;
        Ok(0)
    });
    let replayed = Kernel::new(
        KernelConfig::builder()
            .io(IoMode::Replay(first.io_log))
            .build(),
    )
    .run(|ctx| {
        // Ask for a different device than the log has.
        match ctx.dev_read(DeviceId::Random) {
            Err(KernelError::ReplayDivergence(_)) => Ok(0),
            other => panic!("expected divergence, got {other:?}"),
        }
    });
    assert_eq!(replayed.exit, Ok(0));
}

#[test]
fn conflict_policy_benign_same_value() {
    let k = Kernel::new(
        KernelConfig::builder()
            .policy(ConflictPolicy::BenignSameValue)
            .build(),
    );
    let out = k.run(|ctx| {
        setup_root(ctx)?;
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.mem_mut().write_u64(0x2000, 555)?; // Same value.
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(R))
                    .snap()
                    .start(),
            )?;
        }
        for i in 0..2u64 {
            ctx.get(i, GetSpec::new().merge(R))?;
        }
        assert_eq!(ctx.mem().read_u64(0x2000)?, 555);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.conflicts, 0);
}

#[test]
fn results_identical_across_host_schedules() {
    // Race-prone structure: many children writing disjoint slots with
    // varying compute times. The final memory digest and virtual time
    // must be identical across runs regardless of host scheduling.
    let run = |spin: bool| {
        kernel().run(move |ctx| {
            setup_root(ctx)?;
            for i in 0..8u64 {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            if spin && i % 2 == 0 {
                                // Perturb host timing without touching
                                // virtual state.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            c.charge(1_000 * (i + 1))?;
                            c.mem_mut().write_u64(0x2000 + i * 8, i * i)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(R))
                        .snap()
                        .start(),
                )?;
            }
            for i in 0..8u64 {
                ctx.get(i, GetSpec::new().merge(R))?;
            }
            Ok(ctx.mem().content_digest().value() as i32)
        })
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.exit, b.exit);
    assert_eq!(a.vclock_ns, b.vclock_ns);
}

#[test]
fn many_sequential_spaces_no_leak() {
    // Exercise slot reuse: 100 forks into the same child number.
    let out = kernel().run(|ctx| {
        for i in 0..100 {
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::native(move |_| Ok(i)))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.code, i as u64);
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 1);
    assert_eq!(out.stats.threads_spawned, 100);
}

#[test]
fn unjoined_running_child_is_cleaned_up() {
    // The root exits while a child still computes; shutdown must not
    // hang (the child hits a charge() and observes destruction).
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    loop {
                        c.charge(1)?;
                        std::thread::yield_now();
                    }
                }))
                .start(),
        )?;
        Ok(0) // Exit immediately without joining.
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn node_field_without_cluster_is_unreachable() {
    let out = kernel().run(|ctx| {
        let c = det_kernel::child_on_node(3, 1);
        match ctx.put(c, PutSpec::new()) {
            Err(KernelError::NodeUnreachable(3)) => Ok(0),
            other => panic!("expected NodeUnreachable, got {other:?}"),
        }
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn root_cannot_ret() {
    let out = kernel().run(|ctx| match ctx.ret(0) {
        Err(KernelError::InvalidSpec(_)) => Ok(0),
        other => panic!("expected InvalidSpec, got {other:?}"),
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn root_trap_reported_in_outcome() {
    let out = kernel().run(|ctx| {
        ctx.mem().read_u8(0x1)?;
        Ok(0)
    });
    assert!(matches!(out.exit, Err(TrapKind::Mem(_))));
}

// ---------------------------------------------------------------------
// Targeted-wakeup rendezvous engine (DESIGN.md §6)
// ---------------------------------------------------------------------

/// A space thread that dies without checking in — here by fabricating
/// the kernel's own `Destroyed` error — must trap its waiting parent
/// deterministically instead of leaving the slot stuck in `Running`
/// and the parent deadlocked in `wait_idle` forever.
#[test]
fn fabricated_destroyed_return_traps_parent_not_deadlock() {
    let out = with_watchdog(|| {
        kernel().run(|ctx| {
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::native(|_| Err(KernelError::Destroyed)))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            match r.stop {
                StopReason::Trap(TrapKind::Fault(_)) => Ok(0),
                other => panic!("expected fault trap, got {other:?}"),
            }
        })
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.traps, 1);
}

/// A child that panics mid-rendezvous-protocol (after a successful
/// `Ret` round trip) must surface as a trap at the parent's next
/// rendezvous, never as a hang.
#[test]
fn panicking_child_mid_rendezvous_traps_parent() {
    let out = with_watchdog(|| {
        kernel().run(|ctx| {
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.ret(1)?;
                        panic!("child dies between rendezvous");
                    }))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!((r.stop, r.code), (StopReason::Ret, 1));
            ctx.put(0, PutSpec::new().start())?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.stop, StopReason::Trap(TrapKind::Panic));
            Ok(0)
        })
    });
    assert_eq!(out.exit, Ok(0));
}

/// A native program's trap is terminal (the closure has unwound;
/// there is no vehicle left to resume): `Start` must fail cleanly
/// instead of marking the slot `Running` with nobody to wake — which
/// would deadlock the next `wait_idle`.
#[test]
fn resume_after_terminal_native_trap_fails_cleanly() {
    let out = with_watchdog(|| {
        kernel().run(|ctx| {
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::native(|_| panic!("boom")))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.stop, StopReason::Trap(TrapKind::Panic));
            match ctx.put(0, PutSpec::new().start()) {
                Err(KernelError::NoProgram) => {}
                other => panic!("expected NoProgram, got {other:?}"),
            }
            // The slot is reusable with a fresh program.
            ctx.put(
                0,
                PutSpec::new().program(Program::native(|_| Ok(5))).start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!((r.stop, r.code), (StopReason::Halted, 5));
            Ok(0)
        })
    });
    assert_eq!(out.exit, Ok(0));
}

/// Shutdown must join draining vehicles *before* collecting counters:
/// a threaded VM child left unjoined at root exit still retires its
/// whole program, and the outcome must include every instruction —
/// exactly as many as a fully joined run retires.
#[test]
fn shutdown_collects_draining_thread_counters() {
    let image = det_vm::assemble(
        "
        ldi r2, 0
        li  r6, 500
    loop:
        addi r2, r2, 1
        blt r2, r6, loop
        halt
        ",
    )
    .unwrap();
    let run = |join: bool| {
        let image = image.clone();
        Kernel::new(
            KernelConfig::builder()
                .vm_dispatch(VmDispatch::Threaded)
                .build(),
        )
        .run(move |ctx| {
            ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                    .regs(Regs::at_entry(0))
                    .start(),
            )?;
            if join {
                ctx.get(0, GetSpec::new())?;
            }
            Ok(0)
        })
    };
    let joined = run(true);
    let drained = run(false);
    assert!(joined.stats.vm_instructions > 500);
    assert_eq!(
        drained.stats.vm_instructions, joined.stats.vm_instructions,
        "draining thread's retired instructions were dropped from the outcome"
    );
}

/// The targeted-wakeup lock-in: every park/resume/final check-in
/// issues exactly one condvar notify aimed at its one known waiter,
/// so the total is an exact deterministic function of the rendezvous
/// history — and, critically, *independent of how many other spaces
/// sit parked*. A broadcast engine (the old `notify_all` herd) cannot
/// reproduce these counts.
#[test]
fn targeted_wakeups_exact_and_independent_of_parked_population() {
    const R: u64 = 50; // Roundtrips on the active child.
    let run = |bystanders: u64| {
        kernel().run(move |ctx| {
            // Park `bystanders` children at a Ret rendezvous.
            for b in 0..bystanders {
                ctx.put(
                    b,
                    PutSpec::new()
                        .program(Program::native(|c| {
                            c.ret(0)?;
                            Ok(0)
                        }))
                        .start(),
                )?;
                ctx.get(b, GetSpec::new())?;
            }
            // Drive R rendezvous roundtrips on one more child.
            ctx.put(
                100,
                PutSpec::new()
                    .program(Program::native(|c| {
                        for _ in 0..R {
                            c.ret(0)?;
                        }
                        Ok(0)
                    }))
                    .start(),
            )?;
            for _ in 0..R {
                ctx.get(100, GetSpec::new())?;
                ctx.put(100, PutSpec::new().start())?;
            }
            ctx.get(100, GetSpec::new())?;
            Ok(0)
        })
    };
    // Per roundtrip: one park notify + one resume notify. Plus one
    // park notify per bystander and one final check-in notify for the
    // active child's halt.
    let expect = |b: u64| 2 * R + b + 1;
    for b in [0u64, 6] {
        let out = run(b);
        assert_eq!(out.exit, Ok(0));
        assert_eq!(
            out.stats.condvar_wakeups,
            expect(b),
            "wakeups for {b} parked bystanders"
        );
        // Deterministic: an identical rerun reproduces the count.
        assert_eq!(run(b).stats.condvar_wakeups, expect(b));
    }
}

/// Inline VM dispatch: a leaf VM space is executed by the waiting
/// parent, so its rendezvous issues no condvar traffic and spawns no
/// vehicle at all.
#[test]
fn vm_inline_rendezvous_issues_no_wakeups() {
    let image = det_vm::assemble(
        "
    loop:
        sys 0
        beq r0, r0, loop
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start(),
        )?;
        for _ in 0..40 {
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.stop, StopReason::Ret);
            ctx.put(0, PutSpec::new().start())?;
        }
        ctx.get(0, GetSpec::new())?;
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(
        out.stats.condvar_wakeups, 0,
        "inline rendezvous must not touch condvars"
    );
    assert_eq!(
        out.stats.threads_spawned, 0,
        "leaf VM spaces need no vehicle"
    );
    assert!(out.stats.vm_inline_runs > 40);
    assert_eq!(out.stats.rets, 41);
}

/// Installing a program over a child parked at a *resumable* trap is
/// `ChildActive` under every dispatch mode alike — the live program
/// (a parked thread, or an inline VM state) must not be replaced out
/// from under a possible resume.
#[test]
fn program_replacement_over_resumable_trap_is_child_active_in_both_modes() {
    let image = det_vm::assemble(
        "
        ldi r1, 1
        ldi r2, 0
        div r3, r1, r2
        halt
        ",
    )
    .unwrap();
    for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
        let image = image.clone();
        let out =
            Kernel::new(KernelConfig::builder().vm_dispatch(dispatch).build()).run(move |ctx| {
                ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
                ctx.mem_mut().write(0, &image.bytes)?;
                ctx.put(
                    0,
                    PutSpec::new()
                        .program(Program::Vm)
                        .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                        .regs(Regs::at_entry(0))
                        .start(),
                )?;
                let r = ctx.get(0, GetSpec::new())?;
                assert_eq!(r.stop, StopReason::Trap(TrapKind::DivideByZero));
                match ctx.put(0, PutSpec::new().program(Program::Vm)) {
                    Err(KernelError::ChildActive) => Ok(0),
                    other => panic!("expected ChildActive under {dispatch:?}, got {other:?}"),
                }
            });
        assert_eq!(out.exit, Ok(0), "{dispatch:?}");
    }
}

/// Inline and threaded VM dispatch are observationally identical:
/// same results, same deterministic counters, same virtual time.
#[test]
fn vm_dispatch_modes_agree() {
    let image = det_vm::assemble(
        "
        ldi r1, 0
        li  r5, 0x2000
    loop:
        addi r1, r1, 1
        std r1, [r5+0]
        sys 0
        li  r6, 5
        blt r1, r6, loop
        halt
        ",
    )
    .unwrap();
    let run = |dispatch: VmDispatch| {
        let image = image.clone();
        let out =
            Kernel::new(KernelConfig::builder().vm_dispatch(dispatch).build()).run(move |ctx| {
                ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
                ctx.mem_mut().write(0, &image.bytes)?;
                ctx.put(
                    0,
                    PutSpec::new()
                        .program(Program::Vm)
                        .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                        .regs(Regs::at_entry(0))
                        .start(),
                )?;
                loop {
                    let r = ctx.get(
                        0,
                        GetSpec::new().copy(CopySpec {
                            src: Region::new(0x2000, 0x3000),
                            dst: 0x8000,
                        }),
                    )?;
                    match r.stop {
                        StopReason::Ret => ctx.put(0, PutSpec::new().start())?,
                        StopReason::Halted => break,
                        other => panic!("unexpected stop {other:?}"),
                    };
                }
                Ok(ctx.mem().content_digest().value() as i32)
            });
        (
            out.exit,
            out.vclock_ns,
            out.stats.vm_instructions,
            out.stats.rets,
            out.stats.puts,
            out.stats.gets,
        )
    };
    assert_eq!(run(VmDispatch::Inline), run(VmDispatch::Threaded));
}

/// The fused `PutGet` exchange: applies the Put at the current stop,
/// restarts the child, and collects its *next* stop in one kernel
/// entry.
#[test]
fn put_get_exchange_resumes_and_collects_next_stop() {
    let out = kernel().run(|ctx| {
        // Without Start the exchange has no next stop to collect.
        match ctx.put_get(0, PutSpec::new(), GetSpec::new()) {
            Err(KernelError::InvalidSpec(_)) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    for i in 1..=3u64 {
                        c.ret(i)?;
                    }
                    Ok(9)
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 1));
        let r = ctx.put_get(0, PutSpec::new().start(), GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 2));
        let r = ctx.put_get(0, PutSpec::new().start(), GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 3));
        let r = ctx.put_get(0, PutSpec::new().start(), GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Halted, 9));
        // Nothing left to resume.
        match ctx.put_get(0, PutSpec::new().start(), GetSpec::new()) {
            Err(KernelError::NoProgram) => {}
            other => panic!("expected NoProgram, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    // Counted at kernel entry, like puts/gets: 3 successful exchanges
    // plus the final NoProgram attempt.
    assert_eq!(out.stats.put_gets, 4);
    assert_eq!(out.stats.puts, 1);
    assert_eq!(out.stats.gets, 1);
    assert_eq!(out.stats.rets, 3);
}

/// `PutGet` carries the full option set through both rendezvous: the
/// Put stages state into the child, the Get merges the child's writes
/// out of its next stop.
#[test]
fn put_get_stages_and_merges_like_split_calls() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    // Round 1: publish what we inherited, then stop.
                    let seen = c.mem().read_u64(0x1000)?;
                    c.mem_mut().write_u64(0x2000, seen)?;
                    c.ret(0)?;
                    // Round 2 (after the parent's PutGet restaged us):
                    let seen = c.mem().read_u64(0x1000)?;
                    c.mem_mut().write_u64(0x2008, seen)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0xAAAA);
        // Re-stage a changed input and collect the next round's merge
        // in one exchange.
        ctx.mem_mut().write_u64(0x1000, 0xBBBB)?;
        let r = ctx.put_get(
            0,
            PutSpec::new().copy(CopySpec::mirror(R)).snap().start(),
            GetSpec::new().merge(R),
        )?;
        assert_eq!(r.stop, StopReason::Halted);
        assert!(r.merge.is_some());
        assert_eq!(ctx.mem().read_u64(0x2008)?, 0xBBBB);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.merges, 2);
}

#[test]
fn fork_charges_leaves_not_pages() {
    // The structural-clone cost rule: a Put with Copy+Snap over a
    // leaf-congruent 4 MiB region charges per shared page-table leaf
    // (2 for 4 MiB), not per mapped page (1024) — the O(touched) fork
    // of PAPER.md §3.2/§8. The stats expose the split so the reduction
    // is locked in as deterministic counters.
    use det_memory::PAGES_PER_LEAF;
    let leaf_bytes = (PAGES_PER_LEAF * 4096) as u64;
    let big = Region::sized(4 * leaf_bytes, 4 * 1024 * 1024);
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(big, Perm::RW)?;
        for vpn in 0..big.page_count() {
            ctx.mem_mut().write_u64(big.start + vpn * 4096, vpn)?;
        }
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_| Ok(0)))
                .copy(CopySpec::mirror(big))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new())?;
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    // Copy shared 2 leaves; Snap cloned the child's 2-leaf spine.
    assert_eq!(out.stats.leaves_cloned, 4);
    assert_eq!(out.stats.pages_copied, 1024);
    assert_eq!(out.stats.pages_snapped, 1024);
    // The virtual-time charge for the whole fork must be far below the
    // per-page cost it replaced (1024 pages × page_map_ps twice).
    let costs = det_kernel::CostModel::calibrated();
    assert!(costs.clone_cost_ps(4) * 5 < costs.map_cost_ps(2 * 1024));
}

#[test]
fn analyze_footprint_predicts_and_charges_deterministically() {
    let image = det_vm::assemble(det_vm::corpus::FFT_KERNEL).unwrap();
    let len = image.bytes.len() as u64;
    let run_once = || {
        let img = image.bytes.clone();
        kernel().run(move |ctx| {
            ctx.mem_mut().map_zero(Region::new(0, 0x10000), Perm::RW)?;
            ctx.mem_mut().write(0, &img)?;
            let before_ps = ctx.vclock_ps();
            let fp = ctx.analyze_footprint(0, len)?;
            let charged = ctx.vclock_ps() - before_ps;
            // The fft kernel marches two pointers over one data page:
            // the analysis recovers exactly page 8.
            assert_eq!(fp.writes, det_kernel::PageSet::Ranges(vec![(8, 8)]));
            assert!(!fp.reads.is_unbounded());
            // The charge is the fused syscall + per-step cost, priced
            // by the analyzer's own deterministic step count.
            let costs = det_kernel::CostModel::calibrated();
            assert_eq!(charged, costs.syscall_ps + costs.analyze_cost_ps(fp.steps));
            assert!(fp.steps > 0);
            Ok(fp.steps as i32)
        })
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.exit, b.exit, "analysis step count must be deterministic");
    assert_eq!(a.vclock_ns, b.vclock_ns);
}
