//! Kernel lifecycle, rendezvous, and determinism tests.

use det_kernel::{
    ConflictPolicy, CopySpec, DeviceId, GetSpec, IoMode, Kernel, KernelConfig, KernelError,
    MemError, Perm, Program, PutSpec, Region, Regs, SpaceCtx, StopReason, TrapKind,
};

fn kernel() -> Kernel {
    Kernel::new(KernelConfig::default())
}

const R: Region = Region {
    start: 0x1000,
    end: 0x3000,
};

/// Sets up a two-page RW region in the root with a few markers.
fn setup_root(ctx: &mut SpaceCtx) -> det_kernel::Result<()> {
    ctx.mem_mut().map_zero(R, Perm::RW)?;
    ctx.mem_mut().write_u64(0x1000, 0xAAAA)?;
    Ok(())
}

#[test]
fn child_halts_with_exit_code() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new().program(Program::native(|_| Ok(42))).start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.code, 42);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 1);
    assert_eq!(out.stats.threads_spawned, 1);
}

#[test]
fn get_on_unstarted_child_sees_zero_state() {
    let out = kernel().run(|ctx| {
        let r = ctx.get(5, GetSpec::new().regs())?;
        assert_eq!(r.stop, StopReason::Unstarted);
        assert_eq!(r.regs.unwrap(), Regs::default());
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 1);
}

#[test]
fn start_without_program_fails() {
    let out = kernel().run(|ctx| {
        let e = ctx.put(0, PutSpec::new().start()).unwrap_err();
        assert_eq!(e, KernelError::NoProgram);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn copy_into_child_and_back() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    let v = c.mem().read_u64(0x1000)?;
                    c.mem_mut().write_u64(0x1008, v + 1)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .start(),
        )?;
        ctx.get(
            0,
            GetSpec::new().copy(CopySpec {
                src: Region::new(0x1000, 0x2000),
                dst: 0x8000,
            }),
        )?;
        assert_eq!(ctx.mem().read_u64(0x8008)?, 0xAAAB);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.stats.pages_copied >= 3);
}

#[test]
fn ret_rendezvous_roundtrips() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.ret(1)?; // First checkpoint.
                    c.ret(2)?; // Second.
                    Ok(3)
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 1));
        // Resume; child rets again.
        ctx.put(0, PutSpec::new().start())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 2));
        // Resume to completion.
        ctx.put(0, PutSpec::new().start())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Halted, 3));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.rets, 2);
}

#[test]
fn snapshot_merge_joins_disjoint_writes() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        for i in 0..4u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        c.mem_mut().write_u64(0x2000 + i * 8, 100 + i)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(R))
                    .snap()
                    .start(),
            )?;
        }
        for i in 0..4u64 {
            let r = ctx.get(i, GetSpec::new().merge(R))?;
            assert!(r.merge.is_some());
        }
        for i in 0..4u64 {
            assert_eq!(ctx.mem().read_u64(0x2000 + i * 8)?, 100 + i);
        }
        // Root's own marker survived.
        assert_eq!(ctx.mem().read_u64(0x1000)?, 0xAAAA);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.merges, 4);
    assert_eq!(out.stats.conflicts, 0);
}

#[test]
fn write_write_conflict_detected_at_second_join() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        c.mem_mut().write_u64(0x2000, 100 + i)?; // Same address!
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(R))
                    .snap()
                    .start(),
            )?;
        }
        ctx.get(0, GetSpec::new().merge(R))?;
        let e = ctx.get(1, GetSpec::new().merge(R)).unwrap_err();
        match e {
            KernelError::Conflict(c) => assert_eq!(c.addr, 0x2000),
            other => panic!("expected conflict, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.conflicts, 1);
}

#[test]
fn merge_over_unaligned_region_fails_and_parent_is_intact() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x2000, 0xBEEF)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        // Wait for the child, then attempt a misaligned merge.
        ctx.get(0, GetSpec::new())?;
        let before = ctx.mem().content_digest();
        let e = ctx
            .get(0, GetSpec::new().merge(Region::new(0x1000, 0x1800)))
            .unwrap_err();
        assert!(matches!(
            e,
            KernelError::Mem(MemError::Misaligned { addr: 0x1800 })
        ));
        // The failed join left the parent byte-identical, and the
        // child is still joinable over the aligned region.
        assert_eq!(ctx.mem().content_digest(), before);
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0xBEEF);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn merge_into_read_only_parent_mapping_fails_and_parent_is_intact() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x2000, 0xF00D)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new())?;
        // The parent downgrades the page the child wrote to read-only:
        // the join must fail up front (validate-before-write) instead
        // of silently writing through the protection.
        ctx.mem_mut()
            .set_perm(Region::new(0x2000, 0x3000), Perm::R)?;
        let before = ctx.mem().content_digest();
        let e = ctx.get(0, GetSpec::new().merge(R)).unwrap_err();
        assert!(matches!(
            e,
            KernelError::Mem(MemError::PermDenied { addr: 0x2000, .. })
        ));
        assert_eq!(ctx.mem().content_digest(), before);
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0);
        // Restoring the mapping lets the same join complete.
        ctx.mem_mut()
            .set_perm(Region::new(0x2000, 0x3000), Perm::RW)?;
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2000)?, 0xF00D);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn merge_without_snapshot_is_rejected() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_| Ok(0)))
                .copy(CopySpec::mirror(R))
                .start(),
        )?;
        let e = ctx.get(0, GetSpec::new().merge(R)).unwrap_err();
        assert_eq!(e, KernelError::NoSnapshot);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn child_trap_reported_to_parent() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    // Unmapped access faults.
                    c.mem().read_u8(0xdead_0000)?;
                    Ok(0)
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        match r.stop {
            StopReason::Trap(TrapKind::Mem(MemError::Unmapped { .. })) => {}
            other => panic!("expected unmapped trap, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.traps, 1);
}

#[test]
fn child_panic_reported_as_trap() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_| panic!("boom")))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Trap(TrapKind::Panic));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn grandchildren_compose() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    // The child forks its own children.
                    for i in 0..2u64 {
                        c.put(
                            i,
                            PutSpec::new()
                                .program(Program::native(move |cc| {
                                    cc.mem_mut().write_u64(0x2100 + i * 8, 7 + i)?;
                                    Ok(0)
                                }))
                                .copy(CopySpec::mirror(R))
                                .snap()
                                .start(),
                        )?;
                    }
                    for i in 0..2u64 {
                        c.get(i, GetSpec::new().merge(R))?;
                    }
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new().merge(R))?;
        assert_eq!(ctx.mem().read_u64(0x2100)?, 7);
        assert_eq!(ctx.mem().read_u64(0x2108)?, 8);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 3);
}

#[test]
fn vclock_rendezvous_takes_max() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.charge(1_000_000)?; // 1 ms of work.
                    Ok(0)
                }))
                .start(),
        )?;
        let before = ctx.vclock_ns();
        ctx.get(0, GetSpec::new())?;
        let after = ctx.vclock_ns();
        assert!(after >= 1_000_000, "parent absorbed child's clock: {after}");
        assert!(after >= before);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.vclock_ns >= 1_000_000);
}

#[test]
fn parallel_children_overlap_in_virtual_time() {
    // Two children, 1ms each: makespan ~1ms (parallel), not 2ms.
    let out = kernel().run(|ctx| {
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.charge(1_000_000)?;
                        Ok(0)
                    }))
                    .start(),
            )?;
        }
        for i in 0..2u64 {
            ctx.get(i, GetSpec::new())?;
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.vclock_ns >= 1_000_000);
    assert!(
        out.vclock_ns < 1_200_000,
        "children should overlap: {}",
        out.vclock_ns
    );
}

#[test]
fn sequential_children_accumulate_virtual_time() {
    // Fork-join one at a time: makespan ~2ms.
    let out = kernel().run(|ctx| {
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.charge(1_000_000)?;
                        Ok(0)
                    }))
                    .start(),
            )?;
            ctx.get(i, GetSpec::new())?;
        }
        Ok(0)
    });
    assert!(out.vclock_ns >= 2_000_000);
}

#[test]
fn native_limit_preempts_at_charge_points() {
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    for _ in 0..10 {
                        c.charge(1_000)?; // 10 µs total.
                    }
                    Ok(0)
                }))
                .start_limited(3_500),
        )?;
        let mut preemptions = 0;
        loop {
            let r = ctx.get(0, GetSpec::new())?;
            match r.stop {
                StopReason::LimitReached => {
                    preemptions += 1;
                    ctx.put(0, PutSpec::new().start_limited(3_500))?;
                }
                StopReason::Halted => break,
                other => panic!("unexpected stop {other:?}"),
            }
        }
        assert!(preemptions >= 2, "got {preemptions}");
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.stats.limit_preemptions >= 2);
}

#[test]
fn vm_child_runs_and_halts() {
    let image = det_vm::assemble(
        "
        ldi r2, 21
        add r2, r2, r2
        li  r5, 0x2000
        std r2, [r5+0]
        ldi r1, 9
        halt
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                .regs(Regs::at_entry(0))
                .snap()
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new().merge(Region::new(0, 0x3000)))?;
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.code, 9);
        assert_eq!(ctx.mem().read_u64(0x2000)?, 42);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.vm_instructions, 7); // li = 2 insns here.
}

#[test]
fn vm_sys_ret_and_resume() {
    let image = det_vm::assemble(
        "
        ldi r1, 5
        sys 0
        addi r1, r1, 1
        halt
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Ret, 5));
        ctx.put(0, PutSpec::new().start())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Halted, 6));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn vm_tlb_stats_lock_in_translation_reduction() {
    // A workload-shaped loop (fetch + load + store per iteration) run
    // under the kernel: the software TLB must turn per-access page
    // walks into a handful of fills, and the reduction is locked in at
    // the stat level, not by wall-clock. Counters are deterministic —
    // asserted by the exact-equality replay below.
    let image = det_vm::assemble(
        "
        ldi r1, 0
        li  r5, 0x2000
        li  r6, 30000
    loop:
        addi r1, r1, 1
        std r1, [r5+0]
        ldd r2, [r5+0]
        blt r1, r6, loop
        halt
        ",
    )
    .unwrap();
    let run = || {
        let image = image.clone();
        kernel().run(move |ctx| {
            ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                    .regs(Regs::at_entry(0))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.stop, StopReason::Halted);
            Ok(0)
        })
    };
    let out = run();
    let s = &out.stats;
    assert!(s.vm_instructions > 100_000, "{s:?}");
    // Pages walked per retired instruction: a fraction of a percent
    // (one fill per page per generation epoch, not one per access).
    assert!(
        s.vm_pages_walked * 200 < s.vm_instructions,
        "walked {} of {} instructions",
        s.vm_pages_walked,
        s.vm_instructions
    );
    // Fetches decode once; loads and stores hit their TLBs.
    assert!(s.vm_icache_hits > s.vm_instructions - 32);
    assert!(s.vm_tlb_hits > 2 * (s.vm_instructions / 6) - 32);
    // The counters are deterministic state: a replay reproduces them
    // exactly (the cost model charges virtual time by them).
    let again = run();
    assert_eq!(s.vm_pages_walked, again.stats.vm_pages_walked);
    assert_eq!(s.vm_tlb_hits, again.stats.vm_tlb_hits);
    assert_eq!(s.vm_icache_hits, again.stats.vm_icache_hits);
    assert_eq!(out.vclock_ns, again.vclock_ns);
}

#[test]
fn vm_instruction_limit_is_exact() {
    // A counting loop; 1 ns per instruction in the default model, so a
    // limit of N ns runs exactly N instructions.
    let image = det_vm::assemble(
        "
        ldi r2, 0
    loop:
        addi r2, r2, 1
        beq r0, r0, loop
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start_limited(101),
        )?;
        let r = ctx.get(0, GetSpec::new().regs())?;
        assert_eq!(r.stop, StopReason::LimitReached);
        // 101 instructions: ldi + 50 × (addi, beq) = 101.
        assert_eq!(r.regs.unwrap().gpr[2], 50);
        // Resume for 10 more instructions: 5 more increments.
        ctx.put(0, PutSpec::new().start_limited(10))?;
        let r = ctx.get(0, GetSpec::new().regs())?;
        assert_eq!(r.regs.unwrap().gpr[2], 55);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.vm_instructions, 111);
}

#[test]
fn vm_trap_is_implicit_ret() {
    let image = det_vm::assemble(
        "
        ldi r1, 1
        ldi r2, 0
        div r3, r1, r2
        halt
        ",
    )
    .unwrap();
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x1000)))
                .regs(Regs::at_entry(0))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Trap(TrapKind::DivideByZero));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn tree_copy_clones_child_subtree() {
    let out = kernel().run(|ctx| {
        setup_root(ctx)?;
        // Build child 0 with some state and a grandchild.
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x1100, 77)?;
                    c.put(9, PutSpec::new().zero(Region::new(0x4000, 0x5000)))?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(R))
                .start(),
        )?;
        ctx.get(0, GetSpec::new())?;
        // Clone child 0's subtree into child 1.
        ctx.put(1, PutSpec::new().tree_from(0))?;
        let r = ctx.get(
            1,
            GetSpec::new().copy(CopySpec {
                src: Region::new(0x1000, 0x2000),
                dst: 0x9000,
            }),
        )?;
        assert_eq!(r.stop, StopReason::Unstarted);
        assert_eq!(ctx.mem().read_u64(0x9100)?, 77);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    // Root + child0 + grandchild + clone + cloned grandchild.
    assert_eq!(out.stats.spaces_created, 4);
}

#[test]
fn device_access_is_root_only() {
    let out = kernel().run(|ctx| {
        assert!(ctx.is_root());
        ctx.dev_write(DeviceId::ConsoleOut, b"root writes\n")?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    assert!(!c.is_root());
                    match c.dev_write(DeviceId::ConsoleOut, b"child writes") {
                        Err(KernelError::NotRoot) => Ok(0),
                        other => panic!("expected NotRoot, got {other:?}"),
                    }
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Halted);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console(), b"root writes\n");
}

#[test]
fn console_input_and_record_replay() {
    let run = |io: IoMode, push: bool| {
        let k = Kernel::new(KernelConfig {
            io,
            ..Default::default()
        });
        if push {
            k.push_input(DeviceId::ConsoleIn, b"hello".to_vec());
        }
        k.run(|ctx| {
            let input = ctx.dev_read(DeviceId::ConsoleIn)?.unwrap_or_default();
            let clock = ctx.dev_read(DeviceId::Clock)?.unwrap();
            let rand = ctx.dev_read(DeviceId::Random)?.unwrap();
            ctx.dev_write(DeviceId::ConsoleOut, &input)?;
            ctx.dev_write(DeviceId::ConsoleOut, &clock)?;
            ctx.dev_write(DeviceId::ConsoleOut, &rand)?;
            Ok(0)
        })
    };
    let first = run(IoMode::Record, true);
    assert_eq!(first.io_log.events.len(), 3);
    // Replay without pushing input: identical output.
    let second = run(IoMode::Replay(first.io_log.clone()), false);
    assert_eq!(first.console(), second.console());
}

#[test]
fn replay_divergence_detected() {
    let first = kernel().run(|ctx| {
        ctx.dev_read(DeviceId::Clock)?;
        Ok(0)
    });
    let replayed = Kernel::new(KernelConfig {
        io: IoMode::Replay(first.io_log),
        ..Default::default()
    })
    .run(|ctx| {
        // Ask for a different device than the log has.
        match ctx.dev_read(DeviceId::Random) {
            Err(KernelError::ReplayDivergence(_)) => Ok(0),
            other => panic!("expected divergence, got {other:?}"),
        }
    });
    assert_eq!(replayed.exit, Ok(0));
}

#[test]
fn conflict_policy_benign_same_value() {
    let k = Kernel::new(KernelConfig {
        policy: ConflictPolicy::BenignSameValue,
        ..Default::default()
    });
    let out = k.run(|ctx| {
        setup_root(ctx)?;
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(|c| {
                        c.mem_mut().write_u64(0x2000, 555)?; // Same value.
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(R))
                    .snap()
                    .start(),
            )?;
        }
        for i in 0..2u64 {
            ctx.get(i, GetSpec::new().merge(R))?;
        }
        assert_eq!(ctx.mem().read_u64(0x2000)?, 555);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.conflicts, 0);
}

#[test]
fn results_identical_across_host_schedules() {
    // Race-prone structure: many children writing disjoint slots with
    // varying compute times. The final memory digest and virtual time
    // must be identical across runs regardless of host scheduling.
    let run = |spin: bool| {
        kernel().run(move |ctx| {
            setup_root(ctx)?;
            for i in 0..8u64 {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            if spin && i % 2 == 0 {
                                // Perturb host timing without touching
                                // virtual state.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            c.charge(1_000 * (i + 1))?;
                            c.mem_mut().write_u64(0x2000 + i * 8, i * i)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(R))
                        .snap()
                        .start(),
                )?;
            }
            for i in 0..8u64 {
                ctx.get(i, GetSpec::new().merge(R))?;
            }
            Ok(ctx.mem().content_digest().value() as i32)
        })
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.exit, b.exit);
    assert_eq!(a.vclock_ns, b.vclock_ns);
}

#[test]
fn many_sequential_spaces_no_leak() {
    // Exercise slot reuse: 100 forks into the same child number.
    let out = kernel().run(|ctx| {
        for i in 0..100 {
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::native(move |_| Ok(i)))
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new())?;
            assert_eq!(r.code, i as u64);
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.stats.spaces_created, 1);
    assert_eq!(out.stats.threads_spawned, 100);
}

#[test]
fn unjoined_running_child_is_cleaned_up() {
    // The root exits while a child still computes; shutdown must not
    // hang (the child hits a charge() and observes destruction).
    let out = kernel().run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    loop {
                        c.charge(1)?;
                        std::thread::yield_now();
                    }
                }))
                .start(),
        )?;
        Ok(0) // Exit immediately without joining.
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn node_field_without_cluster_is_unreachable() {
    let out = kernel().run(|ctx| {
        let c = det_kernel::child_on_node(3, 1);
        match ctx.put(c, PutSpec::new()) {
            Err(KernelError::NodeUnreachable(3)) => Ok(0),
            other => panic!("expected NodeUnreachable, got {other:?}"),
        }
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn root_cannot_ret() {
    let out = kernel().run(|ctx| match ctx.ret(0) {
        Err(KernelError::InvalidSpec(_)) => Ok(0),
        other => panic!("expected InvalidSpec, got {other:?}"),
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn root_trap_reported_in_outcome() {
    let out = kernel().run(|ctx| {
        ctx.mem().read_u8(0x1)?;
        Ok(0)
    });
    assert!(matches!(out.exit, Err(TrapKind::Mem(_))));
}

#[test]
fn fork_charges_leaves_not_pages() {
    // The structural-clone cost rule: a Put with Copy+Snap over a
    // leaf-congruent 4 MiB region charges per shared page-table leaf
    // (2 for 4 MiB), not per mapped page (1024) — the O(touched) fork
    // of PAPER.md §3.2/§8. The stats expose the split so the reduction
    // is locked in as deterministic counters.
    use det_memory::PAGES_PER_LEAF;
    let leaf_bytes = (PAGES_PER_LEAF * 4096) as u64;
    let big = Region::sized(4 * leaf_bytes, 4 * 1024 * 1024);
    let out = kernel().run(move |ctx| {
        ctx.mem_mut().map_zero(big, Perm::RW)?;
        for vpn in 0..big.page_count() {
            ctx.mem_mut().write_u64(big.start + vpn * 4096, vpn)?;
        }
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_| Ok(0)))
                .copy(CopySpec::mirror(big))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new())?;
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    // Copy shared 2 leaves; Snap cloned the child's 2-leaf spine.
    assert_eq!(out.stats.leaves_cloned, 4);
    assert_eq!(out.stats.pages_copied, 1024);
    assert_eq!(out.stats.pages_snapped, 1024);
    // The virtual-time charge for the whole fork must be far below the
    // per-page cost it replaced (1024 pages × page_map_ps twice).
    let costs = det_kernel::CostModel::calibrated();
    assert!(costs.clone_cost_ps(4) * 5 < costs.map_cost_ps(2 * 1024));
}
