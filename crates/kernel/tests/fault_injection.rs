//! End-to-end fault injection: every armed fault surfaces as a typed
//! [`KernelError`] (never a panic or a hang), faulted runs stay
//! deterministic, and a killed run's partial trace still replays — the
//! property crash recovery is built on.

use det_kernel::{
    CopySpec, DeviceId, FaultPlan, GetSpec, Kernel, KernelConfig, KernelError, Program, PutSpec,
    Region, RunOutcome, StopReason, TraceSink, TrapKind,
};
use det_memory::Perm;

/// A small fork/join body: one child writes, the parent merges, then
/// device I/O. Enough surface to hang every fault site off of.
fn run_with(plan: FaultPlan, sink: Option<TraceSink>) -> RunOutcome {
    let mut b = KernelConfig::builder().faults(plan);
    if let Some(s) = &sink {
        b = b.trace(s.clone());
    }
    Kernel::new(b.build()).run(|ctx| {
        let region = Region::new(0x1000, 0x2000);
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.mem_mut().write_u64(0x1800, 7)?;
                    c.ret(0)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(region))
                .snap()
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new().merge(region))?;
        assert_eq!(r.stop, StopReason::Ret);
        ctx.dev_write(DeviceId::ConsoleOut, b"done")?;
        Ok(ctx.mem().read_u64(0x1800)? as i32)
    })
}

/// A kill fault stops the run with the typed `Killed` trap — and the
/// partial trace recorded up to the kill still replays cleanly, which
/// is what lets recovery re-feed the suffix after a restore.
#[test]
fn kill_surfaces_as_typed_trap_and_partial_trace_replays() {
    let sink = TraceSink::new();
    let out = run_with(FaultPlan::kill_at_syscall(2), Some(sink.clone()));
    assert_eq!(
        out.exit,
        Err(TrapKind::Fault("kernel killed by injected fault"))
    );
    let trace = sink.collect().expect("partial trace survives the kill");
    trace
        .replay_prefix()
        .expect("a killed run's trace replays up to the cut");
}

/// An injected vehicle panic in a *child* is contained exactly like a
/// real program panic: the child checks in as a terminal `Panic` trap,
/// the parent's rendezvous completes (no deadlock), and the run as a
/// whole keeps its typed outcome.
#[test]
fn injected_child_panic_is_contained_as_trap() {
    let plan =
        FaultPlan::default().with(FaultPlan::parse("panic@syscall:path=/0").expect("valid spec"));
    let out = Kernel::new(KernelConfig::builder().faults(plan).build()).run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|c| {
                    c.ret(0)?; // the armed syscall: panics the vehicle
                    Ok(0)
                }))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!(r.stop, StopReason::Trap(TrapKind::Panic));
        Ok(41)
    });
    assert_eq!(out.exit, Ok(41));
}

/// A failed device write is a typed error the program can observe —
/// and because the fault fires on deterministic coordinates, two runs
/// under the same plan are identical.
#[test]
fn injected_device_failure_is_typed_and_deterministic() {
    let plan = || FaultPlan::default().with(FaultPlan::parse("fail@device").expect("valid spec"));
    let run = || {
        Kernel::new(KernelConfig::builder().faults(plan()).build()).run(|ctx| {
            match ctx.dev_write(DeviceId::ConsoleOut, b"first") {
                Err(KernelError::FaultInjected(site)) => {
                    assert!(site.contains("device"), "typed site label: {site}");
                }
                other => panic!("expected injected device failure, got {other:?}"),
            }
            // Fire-once: the next write goes through.
            ctx.dev_write(DeviceId::ConsoleOut, b"second")?;
            Ok(0)
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.exit, Ok(0));
    assert_eq!(a.console(), b"second");
    assert_eq!(a.exit, b.exit);
    assert_eq!(a.vclock_ns, b.vclock_ns);
    assert_eq!(a.stats, b.stats);
}

/// A simulated allocation failure at a Put is a typed error too; the
/// child slot stays clean and a retry succeeds.
#[test]
fn injected_alloc_failure_is_typed() {
    let plan = FaultPlan::default().with(FaultPlan::parse("fail@alloc").expect("valid spec"));
    let out = Kernel::new(KernelConfig::builder().faults(plan).build()).run(|ctx| {
        let spec = || PutSpec::new().program(Program::native(|_| Ok(3))).start();
        match ctx.put(0, spec()) {
            Err(KernelError::FaultInjected(site)) => {
                assert!(site.contains("alloc"), "typed site label: {site}");
            }
            other => panic!("expected injected alloc failure, got {other:?}"),
        }
        ctx.put(0, spec())?;
        let r = ctx.get(0, GetSpec::new())?;
        assert_eq!((r.stop, r.code), (StopReason::Halted, 3));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}
