//! Trace record/replay lock-in: a recorded run re-applied through the
//! pure core — **no vehicles, no VM interpretation, no host devices**
//! — must land on the same exit status, virtual clock, kernel stats,
//! device outputs, and per-space memory digests as the live run.
//!
//! Every scenario also pushes the trace through its JSON serialization
//! before replaying, so the on-disk form is covered by the same
//! bit-identity guarantee.

use det_kernel::{
    CopySpec, DeviceId, GetSpec, Kernel, KernelConfig, KernelError, Program, PutSpec, Region,
    RunOutcome, StopReason, Trace, TraceSink, VmDispatch,
};
use det_memory::Perm;
use det_vm::Regs;

/// Replays `sink`'s recording (through JSON) and asserts it matches
/// the live outcome bit-for-bit. Host-scheduling noise lives in
/// `RunOutcome::host`, outside the comparison; everything the kernel
/// itself produced must be identical — no carve-outs.
fn assert_replay_matches(live: &RunOutcome, sink: &TraceSink) {
    let trace = sink.collect().expect("sink recorded a trace");
    let json = trace.to_json();
    let trace = Trace::from_json(&json).expect("trace survives JSON round-trip");
    let rep = trace.replay().expect("trace replays cleanly");

    assert_eq!(rep.exit, live.exit, "exit status must replay");
    assert_eq!(rep.vclock_ns, live.vclock_ns, "virtual clock must replay");
    assert_eq!(rep.outputs, live.outputs, "device outputs must replay");
    assert_eq!(
        rep.spaces, live.spaces,
        "per-space artifacts (paths, clocks, digests) must replay"
    );
    assert_eq!(
        rep.space_paths, live.space_paths,
        "lineage paths must replay"
    );
    assert_eq!(rep.stats, live.stats, "kernel stats must replay");
}

/// The PR 5 rendezvous storm — fork-join plus rounds of the fused
/// put_get exchange with merges and restaging — recorded and replayed.
/// This is the acceptance-criteria scenario: the dominant runtime
/// pattern, covering Put (program install, copy, snap, start), fused
/// PutGet, merge, Ret and Halted check-ins.
#[test]
fn put_get_storm_replays_bit_identically() {
    let sink = TraceSink::new();
    let region = Region::new(0x1000, 0x5000);
    let out = Kernel::new(KernelConfig::builder().trace(sink.clone()).build()).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        const N: u64 = 4;
        const ROUNDS: u64 = 6;
        for i in 0..N {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        for round in 0..ROUNDS {
                            c.mem_mut().write_u64(0x2000 + i * 8, round * N + i)?;
                            c.ret(round)?;
                        }
                        Ok(i as i32)
                    }))
                    .copy(CopySpec::mirror(region))
                    .snap()
                    .start(),
            )?;
        }
        for round in 0..ROUNDS {
            for i in 0..N {
                let r = if round == 0 {
                    ctx.get(i, GetSpec::new().merge(region))?
                } else {
                    ctx.put_get(
                        i,
                        PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                        GetSpec::new().merge(region),
                    )?
                };
                assert_eq!(r.stop, StopReason::Ret);
            }
        }
        for i in 0..N {
            let r = ctx.put_get(
                i,
                PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                GetSpec::new().merge(region),
            )?;
            assert_eq!((r.stop, r.code), (StopReason::Halted, i));
        }
        Ok(ctx.mem().content_digest().value() as i32)
    });
    assert!(out.exit.is_ok(), "storm must not trap: {:?}", out.exit);
    assert!(out.stats.put_gets > 0, "storm exercises the fused path");
    assert!(out.stats.merges > 0, "storm exercises merges");
    assert_replay_matches(&out, &sink);
}

/// VM children under the default inline dispatch: the replay
/// reproduces exact instruction counts, VM cache counters, and
/// vclock charges without interpreting a single instruction.
#[test]
fn inline_vm_children_replay_bit_identically() {
    let image = det_vm::assemble(
        "
        ldi r1, 0
        li  r5, 0x2000
    loop:
        addi r1, r1, 1
        std r1, [r5+0]
        sys 0
        li  r6, 4
        blt r1, r6, loop
        halt
        ",
    )
    .unwrap();
    let sink = TraceSink::new();
    let out = Kernel::new(KernelConfig::builder().trace(sink.clone()).build()).run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                    .regs(Regs::at_entry(0))
                    .start(),
            )?;
        }
        for i in 0..2u64 {
            loop {
                let r = ctx.get(
                    i,
                    GetSpec::new().copy(CopySpec {
                        src: Region::new(0x2000, 0x3000),
                        dst: 0x8000 + i * 0x1000,
                    }),
                )?;
                match r.stop {
                    StopReason::Ret => ctx.put(i, PutSpec::new().start())?,
                    StopReason::Halted => break,
                    other => panic!("unexpected stop {other:?}"),
                };
            }
        }
        Ok(ctx.mem().content_digest().value() as i32)
    });
    assert!(out.exit.is_ok());
    assert!(out.stats.vm_instructions > 0, "VM children really ran");
    assert!(out.stats.vm_inline_runs > 0, "inline dispatch exercised");
    assert_replay_matches(&out, &sink);
}

/// Threaded VM dispatch records and replays too — and its replayed
/// stats keep the vehicle-observability counters (threads spawned, no
/// inline runs) that distinguish it from inline mode.
#[test]
fn threaded_vm_children_replay_bit_identically() {
    let image = det_vm::assemble(
        "
        ldi r1, 7
        li  r5, 0x2000
        std r1, [r5+0]
        halt
        ",
    )
    .unwrap();
    let sink = TraceSink::new();
    let cfg = KernelConfig::builder()
        .vm_dispatch(VmDispatch::Threaded)
        .trace(sink.clone())
        .build();
    let out = Kernel::new(cfg).run(move |ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                .regs(Regs::at_entry(0))
                .snap()
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new().merge(Region::new(0x2000, 0x3000)))?;
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(ctx.mem().read_u64(0x2000)?, 7);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert!(out.stats.threads_spawned > 0, "threaded dispatch spawns");
    assert_eq!(out.stats.vm_inline_runs, 0);
    assert_replay_matches(&out, &sink);
}

/// Root device I/O: pushed inputs consumed by `dev_read` and console
/// bytes from `dev_write` both appear identically in the replay —
/// inputs via the recorded deltas, outputs via replayed effects.
#[test]
fn device_io_replays_bit_identically() {
    let sink = TraceSink::new();
    let k = Kernel::new(KernelConfig::builder().trace(sink.clone()).build());
    k.push_input(DeviceId::ConsoleIn, b"deterministic".to_vec());
    let out = k.run(|ctx| {
        let data = ctx.dev_read(DeviceId::ConsoleIn)?.expect("input queued");
        ctx.dev_write(DeviceId::ConsoleOut, &data)?;
        ctx.dev_write(DeviceId::ConsoleOut, b" echo")?;
        // A read past the queue returns None; that, too, must replay.
        assert!(ctx.dev_read(DeviceId::ConsoleIn)?.is_none());
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console(), b"deterministic echo");
    assert_replay_matches(&out, &sink);
}

/// Error paths replay: a write/write merge conflict traps the second
/// join deterministically, and the recorded trace reproduces the
/// conflict counter, the caller's charge, and the final digests.
#[test]
fn merge_conflict_replays_bit_identically() {
    let sink = TraceSink::new();
    let region = Region::new(0x1000, 0x2000);
    let out = Kernel::new(KernelConfig::builder().trace(sink.clone()).build()).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        for i in 0..2u64 {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        c.mem_mut().write_u64(0x1800, 100 + i)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(region))
                    .snap()
                    .start(),
            )?;
        }
        ctx.get(0, GetSpec::new().merge(region))?;
        match ctx.get(1, GetSpec::new().merge(region)) {
            Err(KernelError::Conflict(c)) => assert_eq!(c.addr, 0x1800),
            other => panic!("expected conflict, got {other:?}"),
        }
        Ok(9)
    });
    assert_eq!(out.exit, Ok(9));
    assert_eq!(out.stats.conflicts, 1);
    assert_replay_matches(&out, &sink);
}

/// A panicking native child mid-rendezvous: the vehicle dies without
/// state, the shell synthesizes a terminal trap (PR 5's liveness fix),
/// and the lost-state check-in replays to the same trap and stats.
#[test]
fn lost_state_trap_replays_bit_identically() {
    let sink = TraceSink::new();
    let out = Kernel::new(KernelConfig::builder().trace(sink.clone()).build()).run(|ctx| {
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(|_c| panic!("vehicle dies")))
                .start(),
        )?;
        let r = ctx.get(0, GetSpec::new())?;
        assert!(matches!(r.stop, StopReason::Trap(_)), "got {:?}", r.stop);
        Ok(1)
    });
    assert_eq!(out.exit, Ok(1));
    assert_replay_matches(&out, &sink);
}

/// Deep hierarchies replay: a child that itself forks grandchildren
/// (native programs calling Put/Get from inside their own space).
#[test]
fn nested_fork_join_replays_bit_identically() {
    let sink = TraceSink::new();
    let region = Region::new(0x1000, 0x2000);
    let out = Kernel::new(KernelConfig::builder().trace(sink.clone()).build()).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(move |c| {
                    for j in 0..2u64 {
                        c.put(
                            j,
                            PutSpec::new()
                                .program(Program::native(move |g| {
                                    g.mem_mut().write_u64(0x1000 + j * 8, j + 1)?;
                                    Ok(0)
                                }))
                                .copy(CopySpec::mirror(region))
                                .snap()
                                .start(),
                        )?;
                    }
                    for j in 0..2u64 {
                        c.get(j, GetSpec::new().merge(region))?;
                    }
                    Ok(0)
                }))
                .copy(CopySpec::mirror(region))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new().merge(region))?;
        assert_eq!(ctx.mem().read_u64(0x1000)?, 1);
        assert_eq!(ctx.mem().read_u64(0x1008)?, 2);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_replay_matches(&out, &sink);
}

/// Without a sink the kernel records nothing and pays nothing:
/// `spaces` stays empty and `collect` returns `None`.
#[test]
fn no_sink_means_no_trace() {
    let sink = TraceSink::new();
    let out = Kernel::new(KernelConfig::default()).run(|_ctx| Ok(0));
    assert_eq!(out.exit, Ok(0));
    assert!(out.spaces.is_empty());
    assert!(out.space_paths.is_empty());
    assert!(sink.collect().is_none());
}
