//! Differential checkpoint/restore properties.
//!
//! The oracle is the PR 6 replay contract: a recorded trace re-applied
//! through the pure core lands bit-identically on the live outcome.
//! These properties assert that *checkpoint at a random restorable
//! boundary + byte round-trip + restore + resume the suffix* lands on
//! exactly the same outcome — exit, virtual clock, the full
//! [`det_kernel::KernelStats`] vector, device outputs, and per-space
//! digests. Recovery is replay with a snapshotted prefix; nothing may
//! leak through the serialization.

use det_kernel::{
    Checkpoint, Checkpointer, CopySpec, CostModel, DeviceId, GetSpec, Kernel, KernelConfig,
    Program, PutSpec, Region, RunOutcome, StopReason, Trace, TraceSink, VmDispatch,
    latest_restorable_boundary, restore_chain,
};
use det_memory::Perm;
use proptest::prelude::*;

/// Parameters of one randomized fork/exchange/merge workload.
#[derive(Clone, Debug)]
struct Params {
    n: u64,
    rounds: u64,
    seed: u64,
    /// Root checkpoints after every `ckpt_every`-th join (0 = never).
    ckpt_every: u64,
    dev: bool,
}

/// Runs the parameterized storm traced and returns the live outcome
/// plus its recording. The shape mirrors the PR 6 storm: fork N
/// children with snapshots, `rounds` rounds of ret/put_get exchange
/// with merges, a final halting join, seeded data so page contents
/// vary per case, and optional root checkpoints and device I/O.
fn run_traced(p: &Params) -> (RunOutcome, Trace) {
    let sink = TraceSink::new();
    let kernel = Kernel::new(KernelConfig::builder().trace(sink.clone()).build());
    if p.dev {
        kernel.push_input(DeviceId::ConsoleIn, p.seed.to_le_bytes().to_vec());
    }
    let p = p.clone();
    let region = Region::new(0x1000, 0x5000);
    let out = kernel.run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        if p.dev {
            let data = ctx.dev_read(DeviceId::ConsoleIn)?.unwrap_or_default();
            ctx.dev_write(DeviceId::ConsoleOut, &data)?;
        }
        for i in 0..p.n {
            let (rounds, seed, n) = (p.rounds, p.seed, p.n);
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        for round in 0..rounds {
                            let v = seed.wrapping_mul(round * n + i + 1);
                            c.mem_mut().write_u64(0x2000 + i * 8, v)?;
                            c.ret(round)?;
                        }
                        Ok(i as i32)
                    }))
                    .copy(CopySpec::mirror(region))
                    .snap()
                    .start(),
            )?;
        }
        let mut joins = 0u64;
        for round in 0..p.rounds {
            for i in 0..p.n {
                let r = if round == 0 {
                    ctx.get(i, GetSpec::new().merge(region))?
                } else {
                    ctx.put_get(
                        i,
                        PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                        GetSpec::new().merge(region),
                    )?
                };
                assert_eq!(r.stop, StopReason::Ret);
                joins += 1;
                if p.ckpt_every > 0 && joins.is_multiple_of(p.ckpt_every) {
                    ctx.checkpoint()?;
                }
            }
        }
        for i in 0..p.n {
            let r = ctx.put_get(
                i,
                PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                GetSpec::new().merge(region),
            )?;
            assert_eq!(r.stop, StopReason::Halted);
        }
        Ok(ctx.mem().content_digest().value() as i32)
    });
    let trace = sink.collect().expect("sink recorded");
    (out, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Checkpoint at a random restorable boundary, round-trip the
    /// bundle through bytes, restore, and resume the trace suffix:
    /// the outcome must equal the uninterrupted replay in every field.
    #[test]
    fn checkpoint_restore_resume_matches_oracle(
        n in 1u64..4,
        rounds in 1u64..4,
        seed in any::<u64>(),
        ckpt_every in 0u64..4,
        dev in any::<bool>(),
        cut_frac in 0u64..=1000,
    ) {
        let p = Params { n, rounds, seed, ckpt_every, dev };
        let (live, trace) = run_traced(&p);
        let oracle = trace.replay().expect("trace replays");
        prop_assert_eq!(&oracle.exit, &live.exit);
        prop_assert_eq!(oracle.vclock_ns, live.vclock_ns);

        let cut = (trace.events.len() as u64 * cut_frac / 1000) as usize;
        let boundary = latest_restorable_boundary(&trace, cut);
        prop_assert!(boundary <= cut);

        let ck = Checkpoint::capture(&trace, boundary).expect("capture");
        let ck = Checkpoint::from_bytes(&ck.to_bytes()).expect("byte round-trip");
        prop_assert_eq!(ck.boundary(), boundary as u64);
        prop_assert_eq!(ck.parent(), None);

        let out = ck
            .restore()
            .expect("restore")
            .resume(&trace.events[boundary..])
            .expect("resume");
        prop_assert_eq!(&out.exit, &oracle.exit);
        prop_assert_eq!(out.vclock_ns, oracle.vclock_ns);
        prop_assert_eq!(&out.stats, &oracle.stats);
        prop_assert_eq!(&out.outputs, &oracle.outputs);
        prop_assert_eq!(&out.spaces, &oracle.spaces);
        prop_assert_eq!(&out.space_paths, &oracle.space_paths);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An incremental chain (full base + delta links captured by one
    /// `Checkpointer` mid-stream) restores through `restore_chain` to
    /// the same outcome as the uninterrupted replay.
    #[test]
    fn incremental_chain_matches_oracle(
        n in 1u64..4,
        rounds in 2u64..4,
        seed in any::<u64>(),
        links in 2usize..5,
    ) {
        let p = Params { n, rounds, seed, ckpt_every: 2, dev: false };
        let (_, trace) = run_traced(&p);
        let oracle = trace.replay().expect("trace replays");

        let len = trace.events.len();
        let mut cuts: Vec<usize> = (1..=links)
            .map(|j| latest_restorable_boundary(&trace, len * j / (links + 1)))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut cp = Checkpointer::new(&trace.meta);
        let mut fed = 0usize;
        let mut chain = Vec::new();
        for &cut in &cuts {
            while fed < cut {
                cp.feed(&trace.events[fed]).expect("feed");
                fed += 1;
            }
            chain.push(cp.capture());
        }
        // Round-trip every link through its byte form, and check the
        // parent-digest links: first full, the rest incremental.
        let chain: Vec<Checkpoint> = chain
            .iter()
            .map(|c| Checkpoint::from_bytes(&c.to_bytes()).expect("round-trip"))
            .collect();
        prop_assert_eq!(chain[0].parent(), None);
        for w in chain.windows(2) {
            prop_assert_eq!(w[1].parent(), Some(w[0].digest()));
        }

        let last = *cuts.last().expect("at least one cut");
        let out = restore_chain(&chain)
            .expect("chain restores")
            .resume(&trace.events[last..])
            .expect("resume");
        prop_assert_eq!(&out.exit, &oracle.exit);
        prop_assert_eq!(out.vclock_ns, oracle.vclock_ns);
        prop_assert_eq!(&out.stats, &oracle.stats);
        prop_assert_eq!(&out.outputs, &oracle.outputs);
        prop_assert_eq!(&out.spaces, &oracle.spaces);
    }

    /// Every single-bit corruption of a serialized bundle is rejected:
    /// header damage parses as malformed or a version error, payload
    /// damage trips the FNV-1a digest. No flipped bit ever restores.
    #[test]
    fn any_single_bit_corruption_is_rejected(
        seed in any::<u64>(),
        pos_frac in 0u64..=1000,
        bit in 0u8..8,
    ) {
        let p = Params { n: 2, rounds: 2, seed, ckpt_every: 0, dev: false };
        let (_, trace) = run_traced(&p);
        let boundary = latest_restorable_boundary(&trace, trace.events.len() / 2);
        let mut bytes = Checkpoint::capture(&trace, boundary).expect("capture").to_bytes();
        let pos = ((bytes.len() - 1) as u64 * pos_frac / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(Checkpoint::from_bytes(&bytes).is_err());
    }
}

/// Locks the checkpoint cost law into virtual time: a root checkpoint
/// advances the clock by exactly `syscall_ps + checkpoint_leaf_ps ×
/// dirty-leaves` — proportional to the *dirty* set, not the address
/// space — and identically under both dispatch modes, so checkpoints
/// never perturb cross-dispatch conformance.
#[test]
fn checkpoint_cost_is_per_dirty_leaf_and_dispatch_invariant() {
    fn run(pages: u64, dispatch: VmDispatch, ckpt: bool) -> (RunOutcome, u64) {
        let cfg = KernelConfig::builder()
            .costs(CostModel::calibrated())
            .vm_dispatch(dispatch)
            .build();
        let mut leaves = 0;
        let out = Kernel::new(cfg).run(|ctx| {
            ctx.mem_mut()
                .map_zero(Region::new(0x1000, 0x1000 + 64 * 0x1000), Perm::RW)?;
            for p in 0..pages {
                ctx.mem_mut().write_u64(0x1000 + p * 0x1000, p + 1)?;
            }
            let leaves = if ckpt { ctx.checkpoint()? } else { 0 };
            Ok(leaves as i32)
        });
        if let Ok(code) = out.exit {
            leaves = code as u64;
        }
        (out, leaves)
    }

    let costs = CostModel::calibrated();
    let mut prev_leaves = 0;
    for pages in [1u64, 8, 32] {
        let (base, _) = run(pages, VmDispatch::Inline, false);
        let (with, leaves) = run(pages, VmDispatch::Inline, true);
        assert!(leaves > 0, "checkpoint saw dirty leaves");
        assert!(
            leaves >= prev_leaves,
            "dirty-leaf count grows with the dirty set"
        );
        prev_leaves = leaves;
        assert_eq!(with.stats.checkpoints, 1);
        assert_eq!(with.stats.checkpoint_leaves, leaves);
        // Both charges are multiples of 1000 ps, so the ns-clock delta
        // is exact regardless of where the base clock sits.
        let charge_ps = costs.syscall_ps + costs.checkpoint_leaf_ps * leaves;
        assert_eq!(
            with.vclock_ns - base.vclock_ns,
            charge_ps / 1000,
            "checkpoint must charge per dirty leaf ({pages} pages, {leaves} leaves)"
        );
        // Dispatch invariance: the same run under threaded dispatch
        // lands on the identical virtual clock and leaf count.
        let (threaded, t_leaves) = run(pages, VmDispatch::Threaded, true);
        assert_eq!(t_leaves, leaves);
        assert_eq!(threaded.vclock_ns, with.vclock_ns);
    }
}
