//! Syscall request and result types: the options of Table 2.
//!
//! A [`PutSpec`]/[`GetSpec`] pair can also travel through the fused
//! `PutGet` exchange ([`crate::SpaceCtx::put_get`]): the Put options
//! apply at the child's current stop, the child restarts, and the Get
//! options collect its *next* stop — the runtime's dominant
//! resume→collect pattern as one kernel entry instead of two.

use det_memory::{MergeStats, Perm, Region};
use det_vm::Regs;

use crate::error::TrapKind;
use crate::ids::ChildNum;
use crate::program::Program;

/// A memory copy between the invoking space and a child.
///
/// On `Put` the data flows parent → child; on `Get`, child → parent.
/// `src` is a page-aligned region in the source space; `dst` is the
/// page-aligned destination start address. The copy is virtual
/// (copy-on-write shared frames).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CopySpec {
    /// Source region (in the space data flows *from*).
    pub src: Region,
    /// Destination start address (in the space data flows *to*).
    pub dst: u64,
}

impl CopySpec {
    /// Copies `src` to the same addresses in the destination space.
    pub fn mirror(src: Region) -> CopySpec {
        CopySpec {
            src,
            dst: src.start,
        }
    }
}

/// The `Start` option: begin (or resume) child execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StartSpec {
    /// Work limit in virtual nanoseconds; the child is preempted back
    /// to the parent when its charged work reaches the limit (the
    /// paper's instruction limit, §3.2; exact for VM programs,
    /// checked at kernel entry points for native programs).
    pub limit_ns: Option<u64>,
}

/// Options to the `Put` system call (Table 2).
///
/// All options may be combined in one call; they are applied in the
/// order: `regs`, `program`, `copy`, `zero`, `perm`, `snap`, `tree`,
/// `start`.
#[derive(Default, Debug)]
pub struct PutSpec {
    /// Set the child's register state.
    pub regs: Option<Regs>,
    /// Install the child's program.
    ///
    /// On real hardware the program *is* the memory image copied by
    /// `copy` plus the entry point in `regs`; for VM programs that is
    /// literally true here ([`Program::Vm`] executes from the child's
    /// memory). Native programs additionally carry a host closure,
    /// this library's analogue of the loaded text segment.
    pub program: Option<Program>,
    /// Copy a virtual memory range into the child.
    pub copy: Option<CopySpec>,
    /// Zero-fill a range in the child (mapping it if needed).
    pub zero: Option<Region>,
    /// Set page permissions on a range in the child.
    pub perm: Option<(Region, Perm)>,
    /// Save a reference snapshot of the child's (post-copy) memory.
    pub snap: bool,
    /// Copy the complete state (registers, memory, snapshot, and
    /// recursively all descendants) of another of the caller's
    /// children into this child — the `Tree` option, used for
    /// checkpointing and migration.
    pub tree_from: Option<ChildNum>,
    /// Start the child executing.
    pub start: Option<StartSpec>,
}

impl PutSpec {
    /// An empty request (pure synchronization).
    pub fn new() -> PutSpec {
        PutSpec::default()
    }

    /// Sets the child's registers.
    pub fn regs(mut self, r: Regs) -> Self {
        self.regs = Some(r);
        self
    }

    /// Installs the child's program.
    pub fn program(mut self, p: Program) -> Self {
        self.program = Some(p);
        self
    }

    /// Copies a memory range into the child.
    pub fn copy(mut self, c: CopySpec) -> Self {
        self.copy = Some(c);
        self
    }

    /// Copies `region` to the same addresses in the child.
    pub fn copy_mirror(self, region: Region) -> Self {
        self.copy(CopySpec::mirror(region))
    }

    /// Zero-fills a range in the child.
    pub fn zero(mut self, r: Region) -> Self {
        self.zero = Some(r);
        self
    }

    /// Sets permissions on a range in the child.
    pub fn perm(mut self, r: Region, p: Perm) -> Self {
        self.perm = Some((r, p));
        self
    }

    /// Saves a snapshot of the child's memory.
    pub fn snap(mut self) -> Self {
        self.snap = true;
        self
    }

    /// Copies another child's subtree state into this child.
    pub fn tree_from(mut self, src: ChildNum) -> Self {
        self.tree_from = Some(src);
        self
    }

    /// Starts the child (no limit).
    pub fn start(mut self) -> Self {
        self.start = Some(StartSpec::default());
        self
    }

    /// Starts the child with a work limit in virtual nanoseconds.
    pub fn start_limited(mut self, limit_ns: u64) -> Self {
        self.start = Some(StartSpec {
            limit_ns: Some(limit_ns),
        });
        self
    }
}

/// Options to the `Get` system call (Table 2).
///
/// Applied in the order: `regs` (read), `copy`, `merge`, `zero`,
/// `perm`; `zero`/`perm` manipulate the *child* (for example, clearing
/// a buffer after collecting it).
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct GetSpec {
    /// Read the child's register state into the result.
    pub regs: bool,
    /// Copy a range out of the child.
    pub copy: Option<CopySpec>,
    /// Merge the child's changes since its snapshot into the caller
    /// over this range.
    pub merge: Option<Region>,
    /// Conflict policy for this merge, overriding the kernel default
    /// (the deterministic scheduler uses
    /// [`ConflictPolicy::ChildWins`](det_memory::ConflictPolicy)).
    pub merge_policy: Option<det_memory::ConflictPolicy>,
    /// Zero-fill a range in the child.
    pub zero: Option<Region>,
    /// Set page permissions on a range in the child.
    pub perm: Option<(Region, Perm)>,
}

impl GetSpec {
    /// An empty request (pure synchronization — "wait for child").
    pub fn new() -> GetSpec {
        GetSpec::default()
    }

    /// Reads the child's registers.
    pub fn regs(mut self) -> Self {
        self.regs = true;
        self
    }

    /// Copies a range out of the child.
    pub fn copy(mut self, c: CopySpec) -> Self {
        self.copy = Some(c);
        self
    }

    /// Merges the child's changes over `region`.
    pub fn merge(mut self, region: Region) -> Self {
        self.merge = Some(region);
        self
    }

    /// Overrides the conflict policy for this merge.
    pub fn merge_policy(mut self, policy: det_memory::ConflictPolicy) -> Self {
        self.merge_policy = Some(policy);
        self
    }

    /// Zero-fills a range in the child.
    pub fn zero(mut self, r: Region) -> Self {
        self.zero = Some(r);
        self
    }

    /// Sets permissions on a range in the child.
    pub fn perm(mut self, r: Region, p: Perm) -> Self {
        self.perm = Some((r, p));
        self
    }
}

/// Why a child is stopped, as observed by its parent.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StopReason {
    /// Never started.
    Unstarted,
    /// Called `Ret` (or `sys 0` in VM code) and is resumable.
    Ret,
    /// Its program finished; the exit status is in `r1`.
    Halted,
    /// Trapped; resumable after the parent repairs state.
    Trap(TrapKind),
    /// Preempted by its work limit; resumable.
    LimitReached,
}

impl StopReason {
    /// True if `Put` with `Start` can resume the child.
    pub fn resumable(self) -> bool {
        matches!(
            self,
            StopReason::Ret | StopReason::Trap(_) | StopReason::LimitReached
        )
    }
}

/// Result of a `Put`.
#[derive(Clone, Copy, Debug)]
pub struct PutResult {
    /// The child's stop state when the rendezvous happened (before any
    /// `start` in this call).
    pub child_was: StopReason,
}

/// Result of a `Get`.
#[derive(Clone, Debug)]
pub struct GetResult {
    /// Why the child is stopped.
    pub stop: StopReason,
    /// The child's `r1` (exit-status convention).
    pub code: u64,
    /// The child's registers, if requested.
    pub regs: Option<Regs>,
    /// Merge statistics, if a merge was requested.
    pub merge: Option<MergeStats>,
    /// The child's virtual clock at the rendezvous, in nanoseconds.
    pub child_vclock_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let r = Region::new(0x1000, 0x3000);
        let spec = PutSpec::new()
            .regs(Regs::at_entry(0x40))
            .copy_mirror(r)
            .perm(r, Perm::RW)
            .snap()
            .start_limited(1_000);
        assert!(spec.regs.is_some());
        assert!(spec.snap);
        assert_eq!(spec.start.unwrap().limit_ns, Some(1_000));
        assert_eq!(spec.copy.unwrap().dst, 0x1000);

        let g = GetSpec::new().regs().merge(r);
        assert!(g.regs);
        assert_eq!(g.merge.unwrap(), r);
    }

    #[test]
    fn resumability() {
        assert!(StopReason::Ret.resumable());
        assert!(StopReason::LimitReached.resumable());
        assert!(StopReason::Trap(TrapKind::Panic).resumable());
        assert!(!StopReason::Halted.resumable());
        assert!(!StopReason::Unstarted.resumable());
    }
}
