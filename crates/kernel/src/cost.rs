//! The virtual-time cost model.
//!
//! The reproduction host has a single CPU, so the paper's wall-clock
//! figures are regenerated in *virtual time* (see DESIGN.md): every
//! space carries a virtual clock, advanced by (a) compute work the
//! program declares or the VM counts, and (b) kernel operation costs
//! from this model. Operation *counts* are real — pages copied, bytes
//! compared and copied by merges, syscalls — only the unit costs are
//! parameters, calibrated to commodity hardware of the paper's era
//! (2.2 GHz Opteron, §6.2). `cargo bench` measures the real unit costs
//! of this substrate so the calibration can be checked.
//!
//! All costs are in **picoseconds** to avoid rounding sub-nanosecond
//! per-byte costs; public clock readings are in nanoseconds.

use serde::{Deserialize, Serialize};

use det_memory::MergeStats;

/// Picoseconds per unit of kernel work.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed cost of entering the kernel (trap + dispatch).
    pub syscall_ps: u64,
    /// Cost of creating and dispatching a fresh space execution
    /// (thread creation analogue; first `Start`).
    pub spawn_ps: u64,
    /// Cost of resuming an already-live space (`Start` on a parked
    /// space; scheduler dispatch analogue).
    pub resume_ps: u64,
    /// Cost a space pays to park at a rendezvous (`Ret`, a trap, or a
    /// limit preemption): checking its state in and handing control to
    /// the waiting side. Charged once per resumable check-in,
    /// regardless of how the host dispatches the space (threaded or
    /// inline), so virtual time is execution-vehicle-invariant.
    pub rendezvous_ps: u64,
    /// Per-page cost of copy-on-write mapping (zero-fill, and the
    /// boundary pages a virtual copy walks individually).
    pub page_map_ps: u64,
    /// Per-leaf cost of a structural clone: sharing one 512-page
    /// page-table leaf during a snapshot or a leaf-congruent virtual
    /// copy (`det_memory::PAGES_PER_LEAF` pages per unit). This is
    /// what makes fork/snapshot O(pages-touched) in virtual time too —
    /// a 4 MiB snapshot charges 2 leaves, not 1024 pages.
    pub space_clone_ps: u64,
    /// Per-page cost of scanning a page table entry during merge.
    pub page_scan_ps: u64,
    /// Per-chunk cost of an 8-byte word comparison during merge
    /// diffing (the engine's fast path).
    pub word_compare_ps: u64,
    /// Per-byte cost of comparing bytes during merge diffing (paid
    /// only inside mismatching words).
    pub byte_compare_ps: u64,
    /// Per-byte cost of copying merged bytes into the parent.
    pub byte_copy_ps: u64,
    /// Cost of one interpreted VM instruction (1 GIPS default).
    ///
    /// This is the *TLB-hit* rate: an instruction whose fetch and data
    /// access hit the VM's software TLB / decoded-instruction cache
    /// costs exactly this.
    pub vm_insn_ps: u64,
    /// Cost of one page-table walk performed on the VM's behalf — a
    /// TLB fill or a slow-path access (first touch of a page, a
    /// page-crossing access, or a translation invalidated by a kernel
    /// operation). Charged *in addition to* `vm_insn_ps` for the
    /// instruction that missed, mirroring a hardware TLB miss.
    pub vm_tlb_fill_ps: u64,
    /// Cost per abstract-interpretation step of the static footprint
    /// analyzer (`det-analyze`). The kernel charges
    /// `analyze_step_ps × steps` when a program asks for a footprint
    /// (the prefetch-hint path), where `steps` is the analyzer's
    /// deterministic transfer count — so the hint's cost, like
    /// everything else, is dispatch-invariant virtual time.
    pub analyze_step_ps: u64,
    /// Per-dirty-leaf cost of a checkpoint mark: persisting one
    /// page-table leaf's worth of dirty-delta state. The `Checkpoint`
    /// syscall charges this per leaf holding dirty pages, so an
    /// incremental checkpoint costs O(dirty) in virtual time exactly
    /// as its encoding is O(dirty) in bytes — and nothing extra when
    /// the space is clean.
    pub checkpoint_leaf_ps: u64,
}

impl CostModel {
    /// Calibration resembling the paper's 2.2 GHz Opteron testbed:
    /// ~0.5 µs syscalls, ~25 µs space creation, ~30 ns/page of
    /// page-table work for individually COW-mapped pages, ~300 ns per
    /// structurally-shared page-table leaf (copying one page-directory
    /// entry plus refcount work — the per-512-pages unit of snapshot
    /// and virtual-copy cost), ~1 cycle (~0.45 ns) per 8-byte word
    /// compare on the merge fast path, memcpy/memcmp-class per-byte
    /// costs (~0.25–0.3 ns/byte) for the byte-granularity slow path,
    /// and a ~20 ns TLB fill (a software page-table walk, same order
    /// as `page_scan_ps`). A rendezvous park costs ~1 µs (check-in
    /// plus a targeted wake of the one waiting side — a context-
    /// switch-class cost, checked against the `rendezvous` bench
    /// group's threaded path).
    pub fn calibrated() -> CostModel {
        CostModel {
            syscall_ps: 500_000,
            spawn_ps: 25_000_000,
            resume_ps: 2_000_000,
            rendezvous_ps: 1_000_000,
            page_map_ps: 30_000,
            space_clone_ps: 300_000,
            page_scan_ps: 20_000,
            word_compare_ps: 450,
            byte_compare_ps: 250,
            byte_copy_ps: 300,
            vm_insn_ps: 1_000,
            vm_tlb_fill_ps: 20_000,
            analyze_step_ps: 50_000,
            checkpoint_leaf_ps: 300_000,
        }
    }

    /// All-zero costs: virtual time advances only through explicit
    /// program charges. Used by the conventional-OS baseline, whose
    /// threads share memory directly and pay no copy/merge costs.
    pub fn zero() -> CostModel {
        CostModel {
            syscall_ps: 0,
            spawn_ps: 0,
            resume_ps: 0,
            rendezvous_ps: 0,
            page_map_ps: 0,
            space_clone_ps: 0,
            page_scan_ps: 0,
            word_compare_ps: 0,
            byte_compare_ps: 0,
            byte_copy_ps: 0,
            vm_insn_ps: 1_000,
            vm_tlb_fill_ps: 0,
            analyze_step_ps: 0,
            checkpoint_leaf_ps: 0,
        }
    }

    /// Cost of copy-on-write mapping `pages` pages individually.
    pub fn map_cost_ps(&self, pages: u64) -> u64 {
        self.page_map_ps.saturating_mul(pages)
    }

    /// Cost of structurally sharing `leaves` page-table leaves (one
    /// snapshot or leaf-congruent virtual copy charges this per leaf
    /// instead of `page_map_ps` per mapped page).
    pub fn clone_cost_ps(&self, leaves: u64) -> u64 {
        self.space_clone_ps.saturating_mul(leaves)
    }

    /// Cost of a virtual copy with the given structural-clone counts:
    /// shared leaves at the per-leaf rate, boundary pages at the
    /// per-page rate.
    pub fn copy_cost_ps(&self, stats: &det_memory::CloneStats) -> u64 {
        self.clone_cost_ps(stats.leaves_shared)
            .saturating_add(self.map_cost_ps(stats.boundary_pages))
    }

    /// Cost of statically analyzing a program for `steps` abstract
    /// transfer applications (see [`CostModel::analyze_step_ps`]).
    pub fn analyze_cost_ps(&self, steps: u64) -> u64 {
        self.analyze_step_ps.saturating_mul(steps)
    }

    /// Cost of a checkpoint mark persisting `leaves` dirty page-table
    /// leaves (see [`CostModel::checkpoint_leaf_ps`]).
    pub fn checkpoint_cost_ps(&self, leaves: u64) -> u64 {
        self.checkpoint_leaf_ps.saturating_mul(leaves)
    }

    /// Cost of a merge with the given statistics. Pages skipped via
    /// the dirty write-set (`pages_skipped_clean`) and via a
    /// structurally-shared leaf (`pages_skipped_shared`, one pointer
    /// compare per 512-page block) are free — those are the
    /// optimizations the stats exist to prove out.
    pub fn merge_cost_ps(&self, stats: &MergeStats) -> u64 {
        self.page_scan_ps
            .saturating_mul(stats.pages_scanned)
            .saturating_add(self.word_compare_ps.saturating_mul(stats.words_compared))
            .saturating_add(self.byte_compare_ps.saturating_mul(stats.bytes_compared))
            .saturating_add(self.byte_copy_ps.saturating_mul(stats.bytes_copied))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// Converts picoseconds to nanoseconds (rounding down).
pub fn ps_to_ns(ps: u64) -> u64 {
    ps / 1000
}

/// Converts nanoseconds to picoseconds (saturating).
pub fn ns_to_ps(ns: u64) -> u64 {
    ns.saturating_mul(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_cost_combines_terms() {
        let m = CostModel {
            syscall_ps: 0,
            spawn_ps: 0,
            resume_ps: 0,
            rendezvous_ps: 0,
            page_map_ps: 0,
            space_clone_ps: 0,
            page_scan_ps: 10,
            word_compare_ps: 5,
            byte_compare_ps: 2,
            byte_copy_ps: 3,
            vm_insn_ps: 1,
            vm_tlb_fill_ps: 7,
            analyze_step_ps: 13,
            checkpoint_leaf_ps: 11,
        };
        let stats = MergeStats {
            pages_scanned: 4,
            pages_unchanged: 2,
            pages_diffed: 2,
            words_compared: 50,
            bytes_compared: 100,
            bytes_copied: 7,
            ..Default::default()
        };
        assert_eq!(m.merge_cost_ps(&stats), 4 * 10 + 50 * 5 + 100 * 2 + 7 * 3);
    }

    #[test]
    fn clean_skipped_pages_are_free() {
        let m = CostModel::calibrated();
        let stats = MergeStats {
            pages_skipped_clean: 10_000,
            ..Default::default()
        };
        assert_eq!(m.merge_cost_ps(&stats), 0);
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.map_cost_ps(1000), 0);
        assert_eq!(m.clone_cost_ps(1000), 0);
        assert_eq!(m.merge_cost_ps(&MergeStats::default()), 0);
    }

    #[test]
    fn structural_clone_charges_leaves_not_pages() {
        let m = CostModel::calibrated();
        // A 4 MiB snapshot is 2 leaves: orders of magnitude cheaper in
        // virtual time than 1024 individually mapped pages.
        assert!(m.clone_cost_ps(2) < m.map_cost_ps(1024) / 10);
        let stats = det_memory::CloneStats {
            pages: 1024,
            leaves_shared: 2,
            boundary_pages: 0,
        };
        assert_eq!(m.copy_cost_ps(&stats), m.clone_cost_ps(2));
        let stats = det_memory::CloneStats {
            pages: 16,
            leaves_shared: 0,
            boundary_pages: 16,
        };
        assert_eq!(m.copy_cost_ps(&stats), m.map_cost_ps(16));
    }

    #[test]
    fn checkpoint_cost_scales_with_dirty_leaves() {
        let m = CostModel::calibrated();
        assert_eq!(m.checkpoint_cost_ps(0), 0);
        assert_eq!(m.checkpoint_cost_ps(3), 3 * m.checkpoint_leaf_ps);
        assert_eq!(CostModel::zero().checkpoint_cost_ps(1_000), 0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(ps_to_ns(1999), 1);
        assert_eq!(ns_to_ps(3), 3000);
        assert_eq!(ns_to_ps(u64::MAX), u64::MAX);
    }
}
