//! Syscall-trace record and replay.
//!
//! With tracing enabled ([`crate::KernelConfig::builder`]'s
//! `trace()`), the shell records every event it feeds the pure core —
//! each rendezvous, check-in, device access, and the root exit — into
//! a [`TraceSink`]. The collected [`Trace`] is a complete, serializable
//! account of the run: [`Trace::replay`] re-applies it to a fresh
//! [`KState`](crate::state::KState) **without running any program
//! code** — no threads, no VM interpretation, no host devices — and
//! reproduces the original run's exit status, virtual clock, kernel
//! statistics, device outputs, and per-space memory digests
//! bit-identically.
//!
//! This is the paper's determinism thesis made mechanically checkable:
//! if the kernel state really is a pure function of the explicit event
//! sequence, then folding the recorded events through
//! [`apply`](crate::apply) must land on the same state the live run
//! reached. The `trace_roundtrip` integration tests assert exactly
//! that, through a JSON round-trip for good measure.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use det_memory::{ConflictPolicy, MemError, PageDelta, PageDeltaOp, Perm, Region, SpaceDelta};
use det_vm::Regs;
use serde::{DeError, Deserialize, Serialize, Value, field};

use crate::apply::{EntryRec, PutRec, TraceEvent, VmCounters, apply};
use crate::cost::{CostModel, ps_to_ns};
use crate::device::DeviceId;
use crate::error::{KernelError, Result, TrapKind};
use crate::state::{KState, ProgramKind, RunState, SpaceState, VmDispatch};
use crate::stats::KernelStats;
use crate::syscall::{CopySpec, GetSpec, StartSpec, StopReason};

/// Shared event collector the shell records into.
///
/// Clone it, hand one clone to
/// [`KernelConfigBuilder::trace`](crate::KernelConfigBuilder::trace),
/// and call [`TraceSink::collect`] after the run.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
    meta: Arc<Mutex<Option<TraceMeta>>>,
}

impl TraceSink {
    /// A fresh, empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Appends one event (shell-side).
    pub(crate) fn push(&self, ev: TraceEvent) {
        lock_recover(&self.events).push(ev);
    }

    /// Stamps the run parameters (shell-side, at kernel build).
    pub(crate) fn set_meta(&self, meta: TraceMeta) {
        *lock_recover(&self.meta) = Some(meta);
    }

    /// Number of events recorded so far (a crash log's length).
    pub fn len(&self) -> usize {
        lock_recover(&self.events).len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the recorded trace out of the sink, leaving it empty.
    ///
    /// Returns `None` if the sink was never attached to a kernel.
    pub fn collect(&self) -> Option<Trace> {
        let meta = lock_recover(&self.meta).take()?;
        let events = std::mem::take(&mut *lock_recover(&self.events));
        Some(Trace { meta, events })
    }
}

/// Locks a sink mutex, recovering from poisoning: a vehicle that
/// panicked mid-run (including a deliberately injected panic) must not
/// cascade into every later recorder — the sink holds plain event data
/// that is never left half-written by a panic, so the poison flag
/// carries no information here.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The run parameters a replay must reproduce exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Virtual-time cost model of the recorded run.
    pub costs: CostModel,
    /// Default merge conflict policy.
    pub policy: ConflictPolicy,
    /// VM dispatch mode (affects vehicle-observability counters).
    pub vm_dispatch: VmDispatch,
}

/// A recorded run: parameters plus the full event sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Run parameters.
    pub meta: TraceMeta,
    /// The events, in recorded order.
    pub events: Vec<TraceEvent>,
}

/// The per-space slice of a run's final state — what the conformance
/// harness compares across replicas, and what a replay must reproduce.
///
/// Spaces are named by their deterministic lineage [`path`] in any
/// cross-run artifact; the table [`id`] is an allocation-order detail
/// carried along for diagnostics only.
///
/// [`path`]: SpaceArtifact::path
/// [`id`]: SpaceArtifact::id
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceArtifact {
    /// Space table id (allocation order; may differ across runs).
    pub id: u32,
    /// Deterministic lineage path (`"/"` for the root, `"/7"` for
    /// child number 7 of the root, `"/7/3@1"` for the second space
    /// ever bound at number 3 under it, and so on).
    pub path: String,
    /// Final virtual clock in picoseconds.
    pub vclock_ps: u64,
    /// VM instructions retired.
    pub insn_count: u64,
    /// Whole-space content digest (permissions + bytes of every
    /// mapped page).
    pub digest: u64,
    /// Per-page `(vpn, digest)` pairs, ascending by vpn — fine-grained
    /// enough for a divergence report to name the first differing page.
    pub page_digests: Vec<(u64, u64)>,
}

impl SpaceArtifact {
    pub(crate) fn of(id: u32, path: String, st: &SpaceState) -> SpaceArtifact {
        SpaceArtifact {
            id,
            path,
            vclock_ps: st.vclock_ps,
            insn_count: st.insn_count,
            digest: st.mem.content_digest().value(),
            page_digests: st.mem.page_digests(),
        }
    }
}

/// What a replay reproduces — the deterministic face of
/// [`RunOutcome`](crate::RunOutcome). (The host-I/O log is not part of
/// it: device *inputs* are already baked into the recorded deltas.)
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The root program's exit status, or the trap that ended it.
    pub exit: std::result::Result<i32, TrapKind>,
    /// The root space's final virtual clock (nanoseconds).
    pub vclock_ns: u64,
    /// Kernel operation counters; every field matches the live run
    /// exactly. (Host scheduling noise lives in
    /// [`HostStats`](crate::HostStats), outside this struct.)
    pub stats: KernelStats,
    /// Device output buffers, ordered by device.
    pub outputs: BTreeMap<DeviceId, Vec<u8>>,
    /// Per-space artifacts at end of run, ascending by space id
    /// (spaces whose state was still checked out to an abandoned
    /// vehicle at shutdown are not observable and not listed).
    pub spaces: Vec<SpaceArtifact>,
    /// Every space's `(id, lineage path)`, including spaces with no
    /// artifact — the complete map for projecting trace events onto
    /// path-named streams.
    pub space_paths: Vec<(u32, String)>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compact JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization is infallible")
    }

    /// Pretty-printed JSON encoding.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization is infallible")
    }

    /// Parses a JSON-encoded trace.
    pub fn from_json(s: &str) -> std::result::Result<Trace, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Re-applies the recorded events to a fresh kernel state, running
    /// no program code, and returns the reproduced outcome.
    ///
    /// Fails with [`KernelError::ReplayDivergence`] only if the trace
    /// is structurally impossible (truncated, reordered across a slot,
    /// or forged); errors the recorded programs observed live are part
    /// of history and replay silently.
    pub fn replay(&self) -> Result<ReplayOutcome> {
        let mut ks = KState::new(self.meta.costs, self.meta.policy, self.meta.vm_dispatch);
        for ev in &self.events {
            apply(&mut ks, ev)?;
        }
        outcome_of(ks, true)
    }

    /// Replays a possibly-truncated trace — the crash log of a run
    /// killed mid-flight (e.g. by an injected
    /// [`KernelError::Killed`] fault).
    ///
    /// Identical to [`Trace::replay`], except a missing `RootExit`
    /// event is tolerated: the outcome then reports a
    /// `Fault("run truncated before root exit")` trap in place of an
    /// exit status. Structural divergence still fails — a crash
    /// truncates a trace, it never corrupts it.
    pub fn replay_prefix(&self) -> Result<ReplayOutcome> {
        let mut ks = KState::new(self.meta.costs, self.meta.policy, self.meta.vm_dispatch);
        for ev in &self.events {
            apply(&mut ks, ev)?;
        }
        outcome_of(ks, false)
    }
}

/// Extracts the reproduced outcome from a stepped kernel state.
///
/// With `require_exit`, a state whose trace never recorded a `RootExit`
/// is structural divergence; without it (crash logs, checkpoint
/// resumes over partial suffixes) the missing exit is reported as a
/// deterministic truncation trap.
pub(crate) fn outcome_of(ks: KState, require_exit: bool) -> Result<ReplayOutcome> {
    let exit = match ks.root_exit {
        Some(exit) => exit,
        None if require_exit => {
            return Err(KernelError::ReplayDivergence("trace has no RootExit"));
        }
        None => Err(TrapKind::Fault("run truncated before root exit")),
    };
    let vclock_ns = match ks.slots.get(&0).and_then(|s| s.state.as_ref()) {
        Some(st) => ps_to_ns(st.vclock_ps),
        None => return Err(KernelError::ReplayDivergence("root state missing at exit")),
    };
    let mut spaces = Vec::new();
    let mut space_paths = Vec::new();
    for (&id, slot) in &ks.slots {
        space_paths.push((id, slot.path.clone()));
        // A non-root slot still `Running` was checked out to an
        // abandoned vehicle at shutdown; its memory was not
        // observable live either.
        if id != 0 && matches!(slot.run, RunState::Running) {
            continue;
        }
        if let Some(st) = slot.state.as_ref() {
            spaces.push(SpaceArtifact::of(id, slot.path.clone(), st));
        }
    }
    Ok(ReplayOutcome {
        exit,
        vclock_ns,
        stats: ks.stats,
        outputs: ks.outputs,
        spaces,
        space_paths,
    })
}

// ---------------------------------------------------------------------------
// Serialization.
//
// The kernel's substrate types (`Region`, `Perm`, `Regs`, …) live in
// other crates and do not implement the vendored serde traits, so the
// encoding is written out here as plain functions over `Value`.
// ---------------------------------------------------------------------------

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn hex(bytes: &[u8]) -> Value {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    Value::Str(s)
}

fn unhex(v: &Value) -> std::result::Result<Vec<u8>, DeError> {
    let s = match v {
        Value::Str(s) => s,
        _ => return Err(DeError::msg("expected hex string")),
    };
    if s.len() % 2 != 0 {
        return Err(DeError::msg("odd-length hex string"));
    }
    let digit = |c: u8| -> std::result::Result<u8, DeError> {
        (c as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| DeError::msg("bad hex digit"))
    };
    s.as_bytes()
        .chunks(2)
        .map(|p| Ok(digit(p[0])? << 4 | digit(p[1])?))
        .collect()
}

pub(crate) fn tag(v: &Value) -> std::result::Result<&str, DeError> {
    match v.get("k") {
        Some(Value::Str(s)) => Ok(s),
        _ => Err(DeError::msg("missing `k` tag")),
    }
}

pub(crate) fn v_opt<T>(o: &Option<T>, enc: impl Fn(&T) -> Value) -> Value {
    match o {
        Some(t) => enc(t),
        None => Value::Null,
    }
}

pub(crate) fn p_opt<T>(
    v: &Value,
    dec: impl Fn(&Value) -> std::result::Result<T, DeError>,
) -> std::result::Result<Option<T>, DeError> {
    match v {
        Value::Null => Ok(None),
        other => dec(other).map(Some),
    }
}

pub(crate) fn req<'a>(v: &'a Value, name: &str) -> std::result::Result<&'a Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))
}

fn v_region(r: &Region) -> Value {
    obj(vec![
        ("start", Value::UInt(r.start)),
        ("end", Value::UInt(r.end)),
    ])
}

fn p_region(v: &Value) -> std::result::Result<Region, DeError> {
    Ok(Region {
        start: field(v, "start")?,
        end: field(v, "end")?,
    })
}

fn v_perm(p: Perm) -> Value {
    obj(vec![
        ("r", Value::Bool(p.allows(Perm::R))),
        ("w", Value::Bool(p.allows(Perm::W))),
    ])
}

fn p_perm(v: &Value) -> std::result::Result<Perm, DeError> {
    let r: bool = field(v, "r")?;
    let w: bool = field(v, "w")?;
    Ok(match (r, w) {
        (false, false) => Perm::NONE,
        (true, false) => Perm::R,
        (false, true) => Perm::W,
        (true, true) => Perm::RW,
    })
}

pub(crate) fn v_regs(r: &Regs) -> Value {
    obj(vec![
        ("pc", Value::UInt(r.pc)),
        ("gpr", r.gpr.to_vec().to_value()),
    ])
}

pub(crate) fn p_regs(v: &Value) -> std::result::Result<Regs, DeError> {
    let gpr: Vec<u64> = field(v, "gpr")?;
    let gpr: [u64; Regs::NUM_GPR] = gpr
        .try_into()
        .map_err(|_| DeError::msg("regs need exactly 16 gprs"))?;
    Ok(Regs {
        pc: field(v, "pc")?,
        gpr,
    })
}

pub(crate) fn v_policy(p: ConflictPolicy) -> Value {
    Value::Str(
        match p {
            ConflictPolicy::Strict => "strict",
            ConflictPolicy::BenignSameValue => "benign_same_value",
            ConflictPolicy::ChildWins => "child_wins",
        }
        .to_string(),
    )
}

pub(crate) fn p_policy(v: &Value) -> std::result::Result<ConflictPolicy, DeError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "strict" => Ok(ConflictPolicy::Strict),
            "benign_same_value" => Ok(ConflictPolicy::BenignSameValue),
            "child_wins" => Ok(ConflictPolicy::ChildWins),
            _ => Err(DeError::msg("unknown conflict policy")),
        },
        _ => Err(DeError::msg("expected conflict policy string")),
    }
}

pub(crate) fn v_dispatch(d: VmDispatch) -> Value {
    Value::Str(
        match d {
            VmDispatch::Inline => "inline",
            VmDispatch::Threaded => "threaded",
        }
        .to_string(),
    )
}

pub(crate) fn p_dispatch(v: &Value) -> std::result::Result<VmDispatch, DeError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "inline" => Ok(VmDispatch::Inline),
            "threaded" => Ok(VmDispatch::Threaded),
            _ => Err(DeError::msg("unknown vm dispatch mode")),
        },
        _ => Err(DeError::msg("expected vm dispatch string")),
    }
}

pub(crate) fn v_program_kind(p: ProgramKind) -> Value {
    Value::Str(
        match p {
            ProgramKind::Native => "native",
            ProgramKind::Vm => "vm",
        }
        .to_string(),
    )
}

pub(crate) fn p_program_kind(v: &Value) -> std::result::Result<ProgramKind, DeError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "native" => Ok(ProgramKind::Native),
            "vm" => Ok(ProgramKind::Vm),
            _ => Err(DeError::msg("unknown program kind")),
        },
        _ => Err(DeError::msg("expected program kind string")),
    }
}

fn v_mem_error(e: &MemError) -> Value {
    match e {
        MemError::Unmapped { addr } => obj(vec![
            ("k", Value::Str("unmapped".into())),
            ("addr", Value::UInt(*addr)),
        ]),
        MemError::PermDenied { addr, need } => obj(vec![
            ("k", Value::Str("perm_denied".into())),
            ("addr", Value::UInt(*addr)),
            ("need", v_perm(*need)),
        ]),
        MemError::Misaligned { addr } => obj(vec![
            ("k", Value::Str("misaligned".into())),
            ("addr", Value::UInt(*addr)),
        ]),
        MemError::Conflict { addr } => obj(vec![
            ("k", Value::Str("conflict".into())),
            ("addr", Value::UInt(*addr)),
        ]),
        MemError::AddressOverflow => obj(vec![("k", Value::Str("overflow".into()))]),
    }
}

fn p_mem_error(v: &Value) -> std::result::Result<MemError, DeError> {
    Ok(match tag(v)? {
        "unmapped" => MemError::Unmapped {
            addr: field(v, "addr")?,
        },
        "perm_denied" => MemError::PermDenied {
            addr: field(v, "addr")?,
            need: p_perm(req(v, "need")?)?,
        },
        "misaligned" => MemError::Misaligned {
            addr: field(v, "addr")?,
        },
        "conflict" => MemError::Conflict {
            addr: field(v, "addr")?,
        },
        "overflow" => MemError::AddressOverflow,
        _ => return Err(DeError::msg("unknown mem error")),
    })
}

pub(crate) fn v_trap(t: &TrapKind) -> Value {
    match t {
        TrapKind::Mem(e) => obj(vec![
            ("k", Value::Str("mem".into())),
            ("err", v_mem_error(e)),
        ]),
        TrapKind::DivideByZero => obj(vec![("k", Value::Str("div0".into()))]),
        TrapKind::IllegalInstruction(op) => obj(vec![
            ("k", Value::Str("illegal".into())),
            ("op", Value::UInt(*op as u64)),
        ]),
        TrapKind::PcMisaligned(pc) => obj(vec![
            ("k", Value::Str("pc_misaligned".into())),
            ("pc", Value::UInt(*pc)),
        ]),
        TrapKind::Panic => obj(vec![("k", Value::Str("panic".into()))]),
        TrapKind::Conflict(addr) => obj(vec![
            ("k", Value::Str("conflict".into())),
            ("addr", Value::UInt(*addr)),
        ]),
        TrapKind::Fault(msg) => obj(vec![
            ("k", Value::Str("fault".into())),
            ("msg", Value::Str((*msg).to_string())),
        ]),
    }
}

pub(crate) fn p_trap(v: &Value) -> std::result::Result<TrapKind, DeError> {
    Ok(match tag(v)? {
        "mem" => TrapKind::Mem(p_mem_error(req(v, "err")?)?),
        "div0" => TrapKind::DivideByZero,
        "illegal" => TrapKind::IllegalInstruction(field(v, "op")?),
        "pc_misaligned" => TrapKind::PcMisaligned(field(v, "pc")?),
        "panic" => TrapKind::Panic,
        "conflict" => TrapKind::Conflict(field(v, "addr")?),
        // `TrapKind::Fault` holds a `&'static str`; a parsed trace's
        // message is interned for the process lifetime. Traces are
        // few and small, so this leak is bounded and deliberate.
        "fault" => TrapKind::Fault(Box::leak(field::<String>(v, "msg")?.into_boxed_str())),
        _ => return Err(DeError::msg("unknown trap kind")),
    })
}

pub(crate) fn v_stop(s: StopReason) -> Value {
    match s {
        StopReason::Unstarted => obj(vec![("k", Value::Str("unstarted".into()))]),
        StopReason::Ret => obj(vec![("k", Value::Str("ret".into()))]),
        StopReason::Halted => obj(vec![("k", Value::Str("halted".into()))]),
        StopReason::LimitReached => obj(vec![("k", Value::Str("limit".into()))]),
        StopReason::Trap(t) => obj(vec![("k", Value::Str("trap".into())), ("trap", v_trap(&t))]),
    }
}

pub(crate) fn p_stop(v: &Value) -> std::result::Result<StopReason, DeError> {
    Ok(match tag(v)? {
        "unstarted" => StopReason::Unstarted,
        "ret" => StopReason::Ret,
        "halted" => StopReason::Halted,
        "limit" => StopReason::LimitReached,
        "trap" => StopReason::Trap(p_trap(req(v, "trap")?)?),
        _ => return Err(DeError::msg("unknown stop reason")),
    })
}

pub(crate) fn v_delta(d: &SpaceDelta) -> Value {
    let pages = d
        .pages
        .iter()
        .map(|p| {
            let op = match &p.op {
                PageDeltaOp::Write(bytes) => obj(vec![
                    ("k", Value::Str("write".into())),
                    ("data", hex(bytes)),
                ]),
                PageDeltaOp::WriteZero => obj(vec![("k", Value::Str("zero".into()))]),
                PageDeltaOp::SetPerm => obj(vec![("k", Value::Str("perm".into()))]),
                PageDeltaOp::MarkDirty => obj(vec![("k", Value::Str("dirty".into()))]),
            };
            obj(vec![
                ("vpn", Value::UInt(p.vpn)),
                ("perm", v_perm(p.perm)),
                ("op", op),
            ])
        })
        .collect();
    obj(vec![
        ("pages", Value::Array(pages)),
        ("unmapped", d.unmapped.to_value()),
    ])
}

pub(crate) fn p_delta(v: &Value) -> std::result::Result<SpaceDelta, DeError> {
    let pages = match req(v, "pages")? {
        Value::Array(items) => items
            .iter()
            .map(|pv| {
                let opv = req(pv, "op")?;
                let op = match tag(opv)? {
                    "write" => PageDeltaOp::Write(unhex(req(opv, "data")?)?),
                    "zero" => PageDeltaOp::WriteZero,
                    "perm" => PageDeltaOp::SetPerm,
                    "dirty" => PageDeltaOp::MarkDirty,
                    _ => return Err(DeError::msg("unknown page delta op")),
                };
                Ok(PageDelta {
                    vpn: field(pv, "vpn")?,
                    perm: p_perm(req(pv, "perm")?)?,
                    op,
                })
            })
            .collect::<std::result::Result<Vec<_>, DeError>>()?,
        _ => return Err(DeError::msg("expected page delta array")),
    };
    Ok(SpaceDelta {
        pages,
        unmapped: field(v, "unmapped")?,
    })
}

fn v_entry(e: &EntryRec) -> Value {
    obj(vec![
        ("advance_ps", Value::UInt(e.advance_ps)),
        ("limit_ps", e.limit_ps.to_value()),
        ("delta", v_delta(&e.delta)),
    ])
}

fn p_entry(v: &Value) -> std::result::Result<EntryRec, DeError> {
    Ok(EntryRec {
        advance_ps: field(v, "advance_ps")?,
        limit_ps: field(v, "limit_ps")?,
        delta: p_delta(req(v, "delta")?)?,
    })
}

fn v_copy(c: &CopySpec) -> Value {
    obj(vec![("src", v_region(&c.src)), ("dst", Value::UInt(c.dst))])
}

fn p_copy(v: &Value) -> std::result::Result<CopySpec, DeError> {
    Ok(CopySpec {
        src: p_region(req(v, "src")?)?,
        dst: field(v, "dst")?,
    })
}

fn v_region_perm(rp: &(Region, Perm)) -> Value {
    obj(vec![("region", v_region(&rp.0)), ("perm", v_perm(rp.1))])
}

fn p_region_perm(v: &Value) -> std::result::Result<(Region, Perm), DeError> {
    Ok((p_region(req(v, "region")?)?, p_perm(req(v, "perm")?)?))
}

fn v_put_rec(p: &PutRec) -> Value {
    obj(vec![
        ("regs", v_opt(&p.regs, v_regs)),
        ("program", v_opt(&p.program, |k| v_program_kind(*k))),
        ("copy", v_opt(&p.copy, v_copy)),
        ("zero", v_opt(&p.zero, v_region)),
        ("perm", v_opt(&p.perm, v_region_perm)),
        ("snap", Value::Bool(p.snap)),
        ("tree_from", p.tree_from.to_value()),
        (
            "start",
            v_opt(&p.start, |s: &StartSpec| {
                obj(vec![("limit_ns", s.limit_ns.to_value())])
            }),
        ),
    ])
}

fn p_put_rec(v: &Value) -> std::result::Result<PutRec, DeError> {
    Ok(PutRec {
        regs: p_opt(req(v, "regs")?, p_regs)?,
        program: p_opt(req(v, "program")?, p_program_kind)?,
        copy: p_opt(req(v, "copy")?, p_copy)?,
        zero: p_opt(req(v, "zero")?, p_region)?,
        perm: p_opt(req(v, "perm")?, p_region_perm)?,
        snap: field(v, "snap")?,
        tree_from: field(v, "tree_from")?,
        start: p_opt(req(v, "start")?, |sv| {
            Ok(StartSpec {
                limit_ns: field(sv, "limit_ns")?,
            })
        })?,
    })
}

fn v_get_spec(g: &GetSpec) -> Value {
    obj(vec![
        ("regs", Value::Bool(g.regs)),
        ("copy", v_opt(&g.copy, v_copy)),
        ("merge", v_opt(&g.merge, v_region)),
        ("merge_policy", v_opt(&g.merge_policy, |p| v_policy(*p))),
        ("zero", v_opt(&g.zero, v_region)),
        ("perm", v_opt(&g.perm, v_region_perm)),
    ])
}

fn p_get_spec(v: &Value) -> std::result::Result<GetSpec, DeError> {
    Ok(GetSpec {
        regs: field(v, "regs")?,
        copy: p_opt(req(v, "copy")?, p_copy)?,
        merge: p_opt(req(v, "merge")?, p_region)?,
        merge_policy: p_opt(req(v, "merge_policy")?, p_policy)?,
        zero: p_opt(req(v, "zero")?, p_region)?,
        perm: p_opt(req(v, "perm")?, p_region_perm)?,
    })
}

fn v_vm_counters(c: &VmCounters) -> Value {
    obj(vec![
        ("instructions", Value::UInt(c.instructions)),
        ("tlb_hits", Value::UInt(c.tlb_hits)),
        ("pages_walked", Value::UInt(c.pages_walked)),
        ("icache_hits", Value::UInt(c.icache_hits)),
        ("icache_fills", Value::UInt(c.icache_fills)),
    ])
}

fn p_vm_counters(v: &Value) -> std::result::Result<VmCounters, DeError> {
    Ok(VmCounters {
        instructions: field(v, "instructions")?,
        tlb_hits: field(v, "tlb_hits")?,
        pages_walked: field(v, "pages_walked")?,
        icache_hits: field(v, "icache_hits")?,
        icache_fills: field(v, "icache_fills")?,
    })
}

fn v_event(ev: &TraceEvent) -> Value {
    match ev {
        TraceEvent::Put {
            caller,
            child,
            child_id,
            fused,
            entry,
            put,
            tree_new_ids,
        } => obj(vec![
            ("k", Value::Str("put".into())),
            ("caller", Value::UInt(*caller as u64)),
            ("child", Value::UInt(*child)),
            ("child_id", Value::UInt(*child_id as u64)),
            ("fused", Value::Bool(*fused)),
            ("entry", v_entry(entry)),
            ("put", v_put_rec(put)),
            ("tree_new_ids", tree_new_ids.to_value()),
        ]),
        TraceEvent::Get {
            caller,
            child,
            child_id,
            fused,
            entry,
            get,
        } => obj(vec![
            ("k", Value::Str("get".into())),
            ("caller", Value::UInt(*caller as u64)),
            ("child", Value::UInt(*child)),
            ("child_id", Value::UInt(*child_id as u64)),
            ("fused", Value::Bool(*fused)),
            ("entry", v_opt(entry, v_entry)),
            ("get", v_get_spec(get)),
        ]),
        TraceEvent::CheckIn {
            space,
            reason,
            final_stop,
            lost_state,
            regs,
            advance_ps,
            limit_ps,
            insn_delta,
            vm,
            delta,
        } => obj(vec![
            ("k", Value::Str("check_in".into())),
            ("space", Value::UInt(*space as u64)),
            ("reason", v_stop(*reason)),
            ("final", Value::Bool(*final_stop)),
            ("lost_state", Value::Bool(*lost_state)),
            ("regs", v_regs(regs)),
            ("advance_ps", Value::UInt(*advance_ps)),
            ("limit_ps", limit_ps.to_value()),
            ("insn_delta", Value::UInt(*insn_delta)),
            ("vm", v_vm_counters(vm)),
            ("delta", v_delta(delta)),
        ]),
        TraceEvent::DevRead { entry, dev, data } => obj(vec![
            ("k", Value::Str("dev_read".into())),
            ("entry", v_entry(entry)),
            ("dev", dev.to_value()),
            ("data", v_opt(data, |d| hex(d))),
        ]),
        TraceEvent::DevWrite { entry, dev, data } => obj(vec![
            ("k", Value::Str("dev_write".into())),
            ("entry", v_entry(entry)),
            ("dev", dev.to_value()),
            ("data", hex(data)),
        ]),
        TraceEvent::Checkpoint { entry, leaves } => obj(vec![
            ("k", Value::Str("checkpoint".into())),
            ("entry", v_entry(entry)),
            ("leaves", Value::UInt(*leaves)),
        ]),
        TraceEvent::RootExit { entry, regs, exit } => obj(vec![
            ("k", Value::Str("root_exit".into())),
            ("entry", v_entry(entry)),
            ("regs", v_regs(regs)),
            ("exit", v_exit(exit)),
        ]),
    }
}

pub(crate) fn v_exit(exit: &std::result::Result<i32, TrapKind>) -> Value {
    match exit {
        Ok(code) => obj(vec![("ok", Value::Int(*code as i64))]),
        Err(t) => obj(vec![("trap", v_trap(t))]),
    }
}

pub(crate) fn p_exit(
    v: &Value,
) -> std::result::Result<std::result::Result<i32, TrapKind>, DeError> {
    match (v.get("ok"), v.get("trap")) {
        (Some(code), None) => Ok(Ok(i32::from_value(code)?)),
        (None, Some(t)) => Ok(Err(p_trap(t)?)),
        _ => Err(DeError::msg("bad exit encoding")),
    }
}

fn p_event(v: &Value) -> std::result::Result<TraceEvent, DeError> {
    Ok(match tag(v)? {
        "put" => TraceEvent::Put {
            caller: field(v, "caller")?,
            child: field(v, "child")?,
            child_id: field(v, "child_id")?,
            fused: field(v, "fused")?,
            entry: p_entry(req(v, "entry")?)?,
            put: p_put_rec(req(v, "put")?)?,
            tree_new_ids: field(v, "tree_new_ids")?,
        },
        "get" => TraceEvent::Get {
            caller: field(v, "caller")?,
            child: field(v, "child")?,
            child_id: field(v, "child_id")?,
            fused: field(v, "fused")?,
            entry: p_opt(req(v, "entry")?, p_entry)?,
            get: p_get_spec(req(v, "get")?)?,
        },
        "check_in" => TraceEvent::CheckIn {
            space: field(v, "space")?,
            reason: p_stop(req(v, "reason")?)?,
            final_stop: field(v, "final")?,
            lost_state: field(v, "lost_state")?,
            regs: p_regs(req(v, "regs")?)?,
            advance_ps: field(v, "advance_ps")?,
            limit_ps: field(v, "limit_ps")?,
            insn_delta: field(v, "insn_delta")?,
            vm: p_vm_counters(req(v, "vm")?)?,
            delta: p_delta(req(v, "delta")?)?,
        },
        "dev_read" => TraceEvent::DevRead {
            entry: p_entry(req(v, "entry")?)?,
            dev: DeviceId::from_value(req(v, "dev")?)?,
            data: p_opt(req(v, "data")?, unhex)?,
        },
        "dev_write" => TraceEvent::DevWrite {
            entry: p_entry(req(v, "entry")?)?,
            dev: DeviceId::from_value(req(v, "dev")?)?,
            data: unhex(req(v, "data")?)?,
        },
        "checkpoint" => TraceEvent::Checkpoint {
            entry: p_entry(req(v, "entry")?)?,
            leaves: field(v, "leaves")?,
        },
        "root_exit" => TraceEvent::RootExit {
            entry: p_entry(req(v, "entry")?)?,
            regs: p_regs(req(v, "regs")?)?,
            exit: p_exit(req(v, "exit")?)?,
        },
        _ => return Err(DeError::msg("unknown trace event")),
    })
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        v_event(self)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> std::result::Result<TraceEvent, DeError> {
        p_event(v)
    }
}

impl Serialize for Trace {
    fn to_value(&self) -> Value {
        obj(vec![
            (
                "meta",
                obj(vec![
                    ("costs", self.meta.costs.to_value()),
                    ("policy", v_policy(self.meta.policy)),
                    ("vm_dispatch", v_dispatch(self.meta.vm_dispatch)),
                ]),
            ),
            (
                "events",
                Value::Array(self.events.iter().map(v_event).collect()),
            ),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &Value) -> std::result::Result<Trace, DeError> {
        let mv = req(v, "meta")?;
        let meta = TraceMeta {
            costs: field(mv, "costs")?,
            policy: p_policy(req(mv, "policy")?)?,
            vm_dispatch: p_dispatch(req(mv, "vm_dispatch")?)?,
        };
        let events = match req(v, "events")? {
            Value::Array(items) => items
                .iter()
                .map(p_event)
                .collect::<std::result::Result<Vec<_>, DeError>>()?,
            _ => return Err(DeError::msg("expected event array")),
        };
        Ok(Trace { meta, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_roundtrip() {
        let trace = Trace {
            meta: TraceMeta {
                costs: CostModel::default(),
                policy: ConflictPolicy::Strict,
                vm_dispatch: VmDispatch::Inline,
            },
            events: vec![
                TraceEvent::Put {
                    caller: 0,
                    child: 7,
                    child_id: 1,
                    fused: false,
                    entry: EntryRec {
                        advance_ps: 123,
                        limit_ps: Some(99),
                        delta: SpaceDelta {
                            pages: vec![
                                PageDelta {
                                    vpn: 4,
                                    perm: Perm::RW,
                                    op: PageDeltaOp::Write(vec![0xde, 0xad, 0x00]),
                                },
                                PageDelta {
                                    vpn: 5,
                                    perm: Perm::R,
                                    op: PageDeltaOp::WriteZero,
                                },
                                PageDelta {
                                    vpn: 6,
                                    perm: Perm::NONE,
                                    op: PageDeltaOp::SetPerm,
                                },
                            ],
                            unmapped: vec![42],
                        },
                    },
                    put: PutRec {
                        regs: Some(Regs::default()),
                        program: Some(ProgramKind::Vm),
                        copy: Some(CopySpec {
                            src: Region::new(0x1000, 0x2000),
                            dst: 0x1000,
                        }),
                        zero: None,
                        perm: Some((Region::new(0, 0x1000), Perm::R)),
                        snap: true,
                        tree_from: None,
                        start: Some(StartSpec {
                            limit_ns: Some(1_000),
                        }),
                    },
                    tree_new_ids: vec![2, 3],
                },
                TraceEvent::Get {
                    caller: 0,
                    child: 7,
                    child_id: 1,
                    fused: true,
                    entry: None,
                    get: GetSpec {
                        regs: true,
                        merge: Some(Region::new(0x1000, 0x2000)),
                        merge_policy: Some(ConflictPolicy::ChildWins),
                        ..GetSpec::default()
                    },
                },
                TraceEvent::CheckIn {
                    space: 1,
                    reason: StopReason::Trap(TrapKind::Fault("undefined syscall")),
                    final_stop: true,
                    lost_state: false,
                    regs: Regs::default(),
                    advance_ps: 55,
                    limit_ps: None,
                    insn_delta: 9,
                    vm: VmCounters {
                        instructions: 9,
                        tlb_hits: 8,
                        pages_walked: 1,
                        icache_hits: 7,
                        icache_fills: 2,
                    },
                    delta: SpaceDelta::default(),
                },
                TraceEvent::DevRead {
                    entry: EntryRec::default(),
                    dev: DeviceId::Clock,
                    data: Some(vec![1, 2, 3]),
                },
                TraceEvent::DevWrite {
                    entry: EntryRec::default(),
                    dev: DeviceId::ConsoleOut,
                    data: b"hi".to_vec(),
                },
                TraceEvent::Checkpoint {
                    entry: EntryRec {
                        advance_ps: 77,
                        limit_ps: None,
                        delta: SpaceDelta::default(),
                    },
                    leaves: 3,
                },
                TraceEvent::RootExit {
                    entry: EntryRec::default(),
                    regs: Regs::default(),
                    exit: Err(TrapKind::Mem(MemError::PermDenied {
                        addr: 0x4001,
                        need: Perm::W,
                    })),
                },
            ],
        };
        let json = trace.to_json_pretty();
        let back = Trace::from_json(&json).expect("parses back");
        assert_eq!(back, trace);
        // Compact form too.
        assert_eq!(Trace::from_json(&trace.to_json()).unwrap(), trace);
    }

    #[test]
    fn empty_trace_has_no_root_exit() {
        let trace = Trace {
            meta: TraceMeta {
                costs: CostModel::zero(),
                policy: ConflictPolicy::Strict,
                vm_dispatch: VmDispatch::Inline,
            },
            events: Vec::new(),
        };
        assert!(trace.is_empty());
        assert!(matches!(
            trace.replay(),
            Err(KernelError::ReplayDivergence(_))
        ));
    }
}
