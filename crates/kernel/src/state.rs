//! Pure kernel state: the plain-data half of the functional core.
//!
//! Everything in this module (and in [`crate::apply`]) is ordinary
//! data plus pure functions over it — no locks, no condition
//! variables, no threads, no device or host I/O. The imperative shell
//! (`kernel.rs` / `ctx.rs`) owns all of those and *sequences* the pure
//! core; the trace replayer ([`crate::trace`]) drives the very same
//! core with no execution vehicles at all. A unit test enforces the
//! purity boundary by scanning this module's source (see
//! `core_modules_are_pure` in `apply.rs`).

use std::collections::BTreeMap;

use det_memory::{AddressSpace, ConflictPolicy};
use det_vm::Regs;

use crate::cost::CostModel;
use crate::device::DeviceId;
use crate::error::TrapKind;
use crate::ids::ChildNum;
use crate::stats::KernelStats;
use crate::syscall::StopReason;

/// Execution phase of a space slot.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RunState {
    /// Stopped; `state` present in the slot.
    Idle(StopReason),
    /// An inline VM space with pending execution: `state` (and a warm
    /// `cpu`) present in the slot, waiting to be driven by whichever
    /// thread next waits on it.
    Runnable,
    /// Checked out — to the slot's own vehicle, or to the parent
    /// thread currently executing it inline.
    Running,
    /// Gone; vehicles observing this unwind.
    Destroyed,
}

/// How the kernel executes `Program::Vm` spaces.
///
/// VM spaces are always *leaves* of the space hierarchy (the VM ISA
/// has no `Put`/`Get` surface), so their execution can be deferred to
/// the one thread that will wait on them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VmDispatch {
    /// Execute a VM space inline on the thread that waits for it.
    /// A rendezvous then costs zero host context switches — the
    /// default, and by far the fastest option on few-core hosts.
    ///
    /// Virtual time is unaffected: each space's clock is a pure
    /// function of its own work, and rendezvous still takes the max.
    ///
    /// Execution is lazy: a started child that *nobody ever waits on*
    /// performs no work before shutdown. Its effects were
    /// unobservable anyway — only a rendezvous can publish a child's
    /// state — and how far such an abandoned child gets under
    /// [`VmDispatch::Threaded`] was always host-timing-dependent;
    /// only its host-side observability counters differ.
    #[default]
    Inline,
    /// Give every VM space its own host thread (real wall-clock
    /// parallelism for VM workloads on multicore hosts, at a
    /// park/wake context-switch cost per rendezvous).
    Threaded,
}

/// What kind of program a slot executes — the pure-data shadow of
/// [`crate::Program`], which (for native programs) carries a host
/// closure the core cannot hold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramKind {
    /// A host closure driven through [`crate::SpaceCtx`].
    Native,
    /// A deterministic VM program executing from the space's memory.
    Vm,
}

/// The movable per-space state, checked in/out around execution.
pub(crate) struct SpaceState {
    pub regs: Regs,
    pub mem: AddressSpace,
    pub snap: Option<AddressSpace>,
    /// Virtual clock in picoseconds.
    pub vclock_ps: u64,
    /// Remaining work budget in picoseconds, if limited.
    pub limit_ps: Option<u64>,
    /// VM instructions retired by this space.
    pub insn_count: u64,
    pub home_node: u16,
    pub cur_node: u16,
}

impl SpaceState {
    pub(crate) fn new(node: u16) -> SpaceState {
        SpaceState {
            regs: Regs::default(),
            mem: AddressSpace::new(),
            snap: None,
            vclock_ps: 0,
            limit_ps: None,
            insn_count: 0,
            home_node: node,
            cur_node: node,
        }
    }

    pub(crate) fn clone_image(&self) -> SpaceState {
        SpaceState {
            regs: self.regs,
            mem: self.mem.clone(),
            snap: self.snap.clone(),
            vclock_ps: self.vclock_ps,
            limit_ps: self.limit_ps,
            insn_count: self.insn_count,
            home_node: self.home_node,
            cur_node: self.cur_node,
        }
    }
}

/// One space slot as plain data: the pure core's view of what the
/// shell keeps in a locked `Slot` (children map, run phase, checked-in
/// state, program bookkeeping) minus everything host-bound (the join
/// handle, the warm CPU, the condvars).
pub(crate) struct KSlot {
    /// Child number → space id, the per-space private namespace.
    pub children: BTreeMap<ChildNum, u32>,
    /// Deterministic lineage path (see [`child_path`]). Space *table
    /// ids* are allocation-order artifacts — concurrent creations race
    /// for them — so any cross-run artifact names spaces by path, never
    /// by id.
    pub path: String,
    /// Per-child-number creation counter feeding [`child_path`]'s
    /// generation suffix.
    pub child_gens: BTreeMap<ChildNum, u32>,
    pub run: RunState,
    pub state: Option<Box<SpaceState>>,
    /// Program installed but not yet started.
    pub pending: Option<ProgramKind>,
    /// A dedicated vehicle exists (live thread in the shell).
    pub has_vehicle: bool,
    /// The slot runs its program as an inline VM space.
    pub inline_vm: bool,
    /// Set by a final check-in: nothing is left to resume.
    pub terminal: bool,
}

impl KSlot {
    pub(crate) fn new(node: u16, path: String) -> KSlot {
        KSlot {
            children: BTreeMap::new(),
            path,
            child_gens: BTreeMap::new(),
            run: RunState::Idle(StopReason::Unstarted),
            state: Some(Box::new(SpaceState::new(node))),
            pending: None,
            has_vehicle: false,
            inline_vm: false,
            terminal: false,
        }
    }
}

/// Derives the lineage path of the next space bound at `child` under a
/// parent, bumping the parent's per-number creation counter.
///
/// The root is `"/"`; a first binding is `<parent>/<child-num>`; a
/// binding that *replaces* an earlier one (only `Tree` copies do this —
/// `ensure_child` never creates over an existing entry) is suffixed
/// `@<generation>`. Because every space's children are created by its
/// own single thread of control (a parent can only rewrite the map
/// while the space is parked), the per-number creation *sequence* is a
/// pure function of the kernel-mediated event history — so paths, and
/// anything keyed by them, are identical across runs and between a
/// live run and its trace replay. The shell (`ctx.rs`) and the replay
/// mirror (`apply.rs`) both assign paths through this one function.
pub(crate) fn child_path(
    parent: &str,
    child: ChildNum,
    gens: &mut BTreeMap<ChildNum, u32>,
) -> String {
    let counter = gens.entry(child).or_insert(0);
    let generation = *counter;
    *counter += 1;
    let base = if parent == "/" {
        format!("/{child}")
    } else {
        format!("{parent}/{child}")
    };
    if generation == 0 {
        base
    } else {
        format!("{base}@{generation}")
    }
}

/// The root space's lineage path.
pub(crate) const ROOT_PATH: &str = "/";

/// The whole kernel as plain data: the state a trace replay evolves.
///
/// This is exactly the information the shell scatters across its
/// locked slot table, device hub, and hot counters — gathered into one
/// owned value a pure `apply` can step.
pub(crate) struct KState {
    pub costs: CostModel,
    pub policy: ConflictPolicy,
    pub vm_dispatch: VmDispatch,
    pub slots: BTreeMap<u32, KSlot>,
    pub stats: KernelStats,
    /// Device output buffers (the replayed side of the device hub).
    /// Ordered, like the hub's, so serialized artifacts enumerate
    /// devices canonically.
    pub outputs: BTreeMap<DeviceId, Vec<u8>>,
    /// Set by the `RootExit` event.
    pub root_exit: Option<std::result::Result<i32, TrapKind>>,
}

impl KState {
    pub(crate) fn new(costs: CostModel, policy: ConflictPolicy, vm_dispatch: VmDispatch) -> KState {
        let mut slots = BTreeMap::new();
        let mut root = KSlot::new(0, ROOT_PATH.to_string());
        root.run = RunState::Running;
        slots.insert(0, root);
        KState {
            costs,
            policy,
            vm_dispatch,
            slots,
            stats: KernelStats::default(),
            outputs: BTreeMap::new(),
            root_exit: None,
        }
    }
}

/// Which stop-reason counter a check-in bumps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StopCounter {
    Ret,
    Trap,
    Limit,
}

/// Classifies a stop for the check-in counters (pure; the shell maps
/// the result onto hot atomics, the replayer onto [`KernelStats`]).
pub(crate) fn stop_counter(reason: StopReason) -> Option<StopCounter> {
    match reason {
        StopReason::Ret => Some(StopCounter::Ret),
        StopReason::Trap(_) => Some(StopCounter::Trap),
        StopReason::LimitReached => Some(StopCounter::Limit),
        _ => None,
    }
}

/// The rendezvous park charge applied at check-in: resumable stops pay
/// the handoff cost, final stops do not.
pub(crate) fn check_in_charge(costs: &CostModel, st: &mut SpaceState, reason: StopReason) {
    if reason.resumable() {
        st.vclock_ps = st.vclock_ps.saturating_add(costs.rendezvous_ps);
    }
}

/// The stop reason a final check-in records: a vehicle dying *without*
/// state is checked in as a terminal trap so a waiting parent observes
/// a deterministic stop instead of hanging.
pub(crate) fn final_reason(has_state: bool, reason: StopReason) -> StopReason {
    if has_state || matches!(reason, StopReason::Trap(_)) {
        reason
    } else {
        StopReason::Trap(TrapKind::Panic)
    }
}

/// Rendezvous clock rule: the caller observes the child's stop and
/// takes the later of the two clocks. Returns the child's clock.
pub(crate) fn observe_stop(caller: &mut SpaceState, child_vclock_ps: u64) -> u64 {
    caller.vclock_ps = caller.vclock_ps.max(child_vclock_ps);
    child_vclock_ps
}
