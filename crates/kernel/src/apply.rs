//! The pure state-transition function of the kernel core.
//!
//! Everything the kernel *decides* lives here as plain functions over
//! plain data: what a `Put`/`Get` does to the two spaces at a
//! rendezvous, how a `Start` dispatches, what a check-in charges and
//! counts. The imperative shell (`kernel.rs`/`ctx.rs`) calls these
//! functions between its waits and wakes; the trace replayer calls the
//! same functions from [`apply`], stepping a [`KState`] through a
//! recorded [`TraceEvent`] sequence with no execution vehicles at all.
//!
//! [`apply`] returns the [`Effect`]s the shell would have performed —
//! vehicle spawns, targeted wakeups, device output — as data. Replay
//! never executes them (that is the point), but it derives the
//! vehicle-observability counters (`threads_spawned`,
//! `condvar_wakeups`, `vm_inline_runs`) from them, which is why those
//! counters reproduce bit-identically.
//!
//! Everything *nondeterministic or effectful* is excluded by
//! construction and enforced by the `core_modules_are_pure` test
//! below: no locks, no condition variables, no vehicle spawns, no
//! host clocks, no device access.

use det_memory::{MergeConflict, MergeStats, Perm, Region, SpaceDelta};
use det_vm::Regs;

use crate::cost::{CostModel, ns_to_ps};
use crate::device::DeviceId;
use crate::error::{KernelError, Result, TrapKind};
use crate::ids::ChildNum;
use crate::state::{
    KSlot, KState, ProgramKind, RunState, SpaceState, StopCounter, VmDispatch, check_in_charge,
    child_path, observe_stop, stop_counter,
};
use crate::syscall::{CopySpec, GetSpec, PutSpec, StartSpec, StopReason};

// ---------------------------------------------------------------------------
// Trace events: the explicit inputs of the state machine.
// ---------------------------------------------------------------------------

/// VM cache and instruction counters of one execution window, as
/// deltas (everything a [`TraceEvent::CheckIn`] must carry so replay
/// reproduces the VM observability counters without interpreting).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct VmCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// Software-TLB hits (reads + writes).
    pub tlb_hits: u64,
    /// Page-table walks.
    pub pages_walked: u64,
    /// Decoded-instruction cache hits.
    pub icache_hits: u64,
    /// Decoded-instruction cache fills.
    pub icache_fills: u64,
}

/// The caller-side window since the caller's previous sync point: how
/// far its virtual clock advanced (program charges plus the syscall
/// entry charge), its remaining work limit, and every page its own
/// memory changed. Replay applies this *instead of* running the
/// caller's program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EntryRec {
    /// Virtual-clock advance over the window, picoseconds.
    pub advance_ps: u64,
    /// The absolute remaining work limit at the sync point.
    pub limit_ps: Option<u64>,
    /// Memory changes over the window.
    pub delta: SpaceDelta,
}

/// Pure-data image of a [`PutSpec`]: identical options, with the
/// program reduced to its [`ProgramKind`] (a native program's closure
/// cannot be serialized — and replay never runs it).
#[derive(Clone, Debug, PartialEq)]
pub struct PutRec {
    /// See [`PutSpec::regs`].
    pub regs: Option<Regs>,
    /// See [`PutSpec::program`].
    pub program: Option<ProgramKind>,
    /// See [`PutSpec::copy`].
    pub copy: Option<CopySpec>,
    /// See [`PutSpec::zero`].
    pub zero: Option<Region>,
    /// See [`PutSpec::perm`].
    pub perm: Option<(Region, Perm)>,
    /// See [`PutSpec::snap`].
    pub snap: bool,
    /// See [`PutSpec::tree_from`].
    pub tree_from: Option<ChildNum>,
    /// See [`PutSpec::start`].
    pub start: Option<StartSpec>,
}

impl PutRec {
    /// The recordable image of a spec.
    pub fn of(spec: &PutSpec) -> PutRec {
        PutRec {
            regs: spec.regs,
            program: spec.program.as_ref().map(|p| p.kind()),
            copy: spec.copy,
            zero: spec.zero,
            perm: spec.perm,
            snap: spec.snap,
            tree_from: spec.tree_from,
            start: spec.start,
        }
    }
}

/// One kernel-mediated event: the explicit inputs from which the whole
/// kernel state evolves (PAPER.md's thesis, as a data type).
///
/// Events on the same slot are linearized by that slot's lock at
/// record time; events on different slots commute (they touch disjoint
/// state), so any recorded interleaving replays to the same result.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A `Put` rendezvous (also the Put half of a fused `PutGet`).
    Put {
        /// The invoking space.
        caller: u32,
        /// The child number named by the caller.
        child: ChildNum,
        /// The child's space id (as allocated at record time).
        child_id: u32,
        /// True if this is the Put half of a fused `PutGet`.
        fused: bool,
        /// The caller's window since its previous sync point.
        entry: EntryRec,
        /// The options applied.
        put: PutRec,
        /// Space ids allocated by a `tree_from` subtree copy, in
        /// creation (pre-)order.
        tree_new_ids: Vec<u32>,
    },
    /// A `Get` rendezvous (also the Get half of a fused `PutGet`).
    Get {
        /// The invoking space.
        caller: u32,
        /// The child number named by the caller.
        child: ChildNum,
        /// The child's space id.
        child_id: u32,
        /// True if this is the Get half of a fused `PutGet` (then
        /// `entry` is absent: the caller did nothing since the fused
        /// Put).
        fused: bool,
        /// The caller's window, absent for the fused half.
        entry: Option<EntryRec>,
        /// The options applied.
        get: GetSpec,
    },
    /// A space checked its state in (park, final stop, or an inline VM
    /// drive completing).
    CheckIn {
        /// The space checking in.
        space: u32,
        /// Why it stopped.
        reason: StopReason,
        /// True for a final check-in (the vehicle exited).
        final_stop: bool,
        /// True if the vehicle died without state: replay substitutes
        /// the same fresh state the live kernel synthesizes.
        lost_state: bool,
        /// Register state at the stop.
        regs: Regs,
        /// Virtual-clock advance since the space's last sync point
        /// (vehicle-side work; the rendezvous park charge is re-derived
        /// by replay, not recorded).
        advance_ps: u64,
        /// Absolute remaining work limit at the stop.
        limit_ps: Option<u64>,
        /// VM instructions retired in the window.
        insn_delta: u64,
        /// VM observability counters of the window.
        vm: VmCounters,
        /// Memory changes in the window.
        delta: SpaceDelta,
    },
    /// A root device read (root-only, so the space is implicit).
    DevRead {
        /// The root's window since its previous sync point.
        entry: EntryRec,
        /// Device read from.
        dev: DeviceId,
        /// The input consumed (informational: replay does not need it,
        /// but a trace doubles as an input log).
        data: Option<Vec<u8>>,
    },
    /// A root device write.
    DevWrite {
        /// The root's window since its previous sync point.
        entry: EntryRec,
        /// Device written to.
        dev: DeviceId,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// A root checkpoint mark (root-only, like device I/O, so the
    /// space is implicit): the root asked the kernel to persist a
    /// restorable image at this rendezvous boundary. The event carries
    /// the mark's deterministic cost basis — the number of dirty
    /// page-table leaves in the root's memory — so replay re-derives
    /// (and cross-checks) the identical virtual-time charge.
    Checkpoint {
        /// The root's window since its previous sync point.
        entry: EntryRec,
        /// Dirty page-table leaves in the root's memory at the mark
        /// (the incremental-checkpoint work unit; replay recomputes
        /// this and diverges on mismatch).
        leaves: u64,
    },
    /// The root program returned: the end of the recorded run.
    RootExit {
        /// The root's final window.
        entry: EntryRec,
        /// The root's final registers.
        regs: Regs,
        /// Exit status or terminal trap.
        exit: std::result::Result<i32, TrapKind>,
    },
}

/// What the shell would do in response to an applied event. Replay
/// returns these as data and performs none of them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Effect {
    /// Create an execution vehicle for a fresh program.
    SpawnVehicle {
        /// The space to run.
        space: u32,
        /// What kind of program the vehicle drives.
        program: ProgramKind,
    },
    /// Mark an inline VM space runnable (it executes when next waited
    /// on).
    MarkRunnable {
        /// The runnable space.
        space: u32,
    },
    /// Re-run an already-started inline VM space.
    ResumeInline {
        /// The runnable space.
        space: u32,
    },
    /// Wake a parked vehicle (one targeted notify).
    ResumeVehicle {
        /// The space whose vehicle resumes.
        space: u32,
    },
    /// Wake the parent waiting on a check-in (one targeted notify).
    WakeParent {
        /// The space that checked in.
        space: u32,
    },
    /// Append bytes to a device output buffer.
    PushOutput {
        /// The device written.
        dev: DeviceId,
        /// How many bytes.
        bytes: u64,
    },
    /// The run is over.
    RootExited,
}

// ---------------------------------------------------------------------------
// Pure decision + memory-op functions, shared by the shell and replay.
// ---------------------------------------------------------------------------

/// Charges `ps` of virtual work to a space. Returns true when the
/// charge exhausts the space's work limit (the caller parks it with
/// [`StopReason::LimitReached`]; the limit is cleared so the resumed
/// space runs unlimited until its parent sets a new one).
pub(crate) fn charge(st: &mut SpaceState, ps: u64) -> bool {
    st.vclock_ps = st.vclock_ps.saturating_add(ps);
    if let Some(limit) = st.limit_ps {
        if ps >= limit {
            st.limit_ps = None;
            return true;
        }
        st.limit_ps = Some(limit - ps);
    }
    false
}

/// What installing a program over a child stopped as `was` entails.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum InstallAction {
    /// Never started: install into the fresh slot.
    Fresh,
    /// Finished (or terminally trapped): reap the old vehicle and CPU
    /// identity, then install.
    Replace,
}

/// Whether a program may be installed over a child stopped as `was`
/// (a resumable stop is a *live* child; installing over it is an
/// error, identically in every dispatch mode).
pub(crate) fn install_action(was: StopReason, terminal: bool) -> Result<InstallAction> {
    match was {
        StopReason::Unstarted => Ok(InstallAction::Fresh),
        StopReason::Trap(_) if !terminal => Err(KernelError::ChildActive),
        StopReason::Halted | StopReason::Trap(_) => Ok(InstallAction::Replace),
        _ => Err(KernelError::ChildActive),
    }
}

/// Memory-op side meters, folded into stats and the caller's clock by
/// whichever driver (shell or replay) invoked the ops.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct MemOpCounts {
    pub pages_copied: u64,
    pub pages_snapped: u64,
    pub leaves_cloned: u64,
    pub charge_ps: u64,
}

/// The `Copy` option: a virtual (COW) copy from `src` into `dst`.
/// Returns the page count (the cluster copy hook's input).
pub(crate) fn copy_op(
    costs: &CostModel,
    src: &SpaceState,
    dst: &mut SpaceState,
    c: CopySpec,
    counts: &mut MemOpCounts,
) -> Result<u64> {
    let cs = dst.mem.copy_from_counted(&src.mem, c.src, c.dst)?;
    counts.pages_copied += cs.pages;
    counts.leaves_cloned += cs.leaves_shared;
    counts.charge_ps += costs.copy_cost_ps(&cs);
    Ok(cs.pages)
}

/// The `Zero` option. `count_pages` matches the live asymmetry: a
/// `Put`+Zero counts into `pages_copied`, a `Get`+Zero does not.
pub(crate) fn zero_op(
    costs: &CostModel,
    dst: &mut SpaceState,
    r: Region,
    count_pages: bool,
    counts: &mut MemOpCounts,
) -> Result<()> {
    dst.mem.map_zero(r, Perm::RW)?;
    let pages = r.page_count();
    if count_pages {
        counts.pages_copied += pages;
    }
    counts.charge_ps += costs.map_cost_ps(pages);
    Ok(())
}

/// The `Perm` option.
pub(crate) fn perm_op(dst: &mut SpaceState, r: Region, p: Perm) -> Result<()> {
    dst.mem.set_perm(r, p)?;
    Ok(())
}

/// The `Snap` option: save the child's reference snapshot, charged per
/// page-table leaf.
pub(crate) fn snap_op(costs: &CostModel, child: &mut SpaceState, counts: &mut MemOpCounts) {
    child.snap = Some(child.mem.snapshot());
    let leaves = child.mem.leaf_count() as u64;
    counts.pages_snapped += child.mem.page_count() as u64;
    counts.leaves_cloned += leaves;
    counts.charge_ps += costs.clone_cost_ps(leaves);
}

/// The `Merge` option: fold the child's changes since its snapshot
/// into the caller. The merge cost is metered even when a conflict is
/// found (the scan happened); the caller decides how to record the
/// result.
pub(crate) fn merge_op(
    costs: &CostModel,
    default_policy: det_memory::ConflictPolicy,
    caller: &mut SpaceState,
    child: &SpaceState,
    region: Region,
    policy_override: Option<det_memory::ConflictPolicy>,
    counts: &mut MemOpCounts,
) -> Result<(MergeStats, Option<MergeConflict>)> {
    let snap = child.snap.as_ref().ok_or(KernelError::NoSnapshot)?;
    let policy = policy_override.unwrap_or(default_policy);
    let (stats, conflict) = caller
        .mem
        .try_merge_from(&child.mem, snap, region, policy)?;
    counts.charge_ps += costs.merge_cost_ps(&stats);
    Ok((stats, conflict))
}

/// The spawn-vs-resume cost of a `Start`.
pub(crate) fn start_charge_ps(costs: &CostModel, installed_program: bool, was: StopReason) -> u64 {
    if installed_program || was == StopReason::Unstarted {
        costs.spawn_ps
    } else {
        costs.resume_ps
    }
}

/// Stamps a child's state at start: its clock catches up to the
/// parent's, and the work limit is (re)set.
pub(crate) fn stamp_start(st: &mut SpaceState, parent_vclock_ps: u64, limit_ns: Option<u64>) {
    st.vclock_ps = st.vclock_ps.max(parent_vclock_ps);
    st.limit_ps = limit_ns.map(ns_to_ps);
}

/// How a `Start` dispatches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StartAction {
    /// Fresh program, needs a vehicle.
    Spawn(ProgramKind),
    /// Fresh inline VM program: becomes runnable, no vehicle.
    RunnableInline,
    /// Parked inline VM space: becomes runnable again.
    ResumeInline,
    /// Parked vehicle: one targeted wake.
    ResumeVehicle,
}

/// The `Start` dispatch decision. `pending` must already have been
/// taken from the slot iff it has neither vehicle nor inline identity
/// (matching the live take-before-decide order, so a failed fresh
/// start consumes the pending program exactly as the shell does).
pub(crate) fn start_action(
    dispatch: VmDispatch,
    has_vehicle: bool,
    inline_vm: bool,
    pending: Option<ProgramKind>,
    prior: StopReason,
    terminal: bool,
) -> Result<StartAction> {
    if !has_vehicle && !inline_vm {
        match pending.ok_or(KernelError::NoProgram)? {
            ProgramKind::Vm if dispatch == VmDispatch::Inline => Ok(StartAction::RunnableInline),
            kind => Ok(StartAction::Spawn(kind)),
        }
    } else if !prior.resumable() || terminal {
        Err(KernelError::NoProgram)
    } else if inline_vm {
        Ok(StartAction::ResumeInline)
    } else {
        Ok(StartAction::ResumeVehicle)
    }
}

// ---------------------------------------------------------------------------
// apply: one event, pure.
// ---------------------------------------------------------------------------

fn divergence<T>(what: &'static str) -> Result<T> {
    Err(KernelError::ReplayDivergence(what))
}

fn slot_mut(ks: &mut KState, id: u32) -> Result<&mut KSlot> {
    match ks.slots.get_mut(&id) {
        Some(s) => Ok(s),
        None => divergence("trace names an unknown space"),
    }
}

fn state_mut(ks: &mut KState, id: u32) -> Result<&mut SpaceState> {
    match ks.slots.get_mut(&id).and_then(|s| s.state.as_deref_mut()) {
        Some(st) => Ok(st),
        None => divergence("trace names a space whose state is checked out"),
    }
}

/// Applies a recorded caller window: clock advance, limit, memory
/// delta.
fn apply_entry(ks: &mut KState, id: u32, e: &EntryRec) -> Result<()> {
    let st = state_mut(ks, id)?;
    st.vclock_ps = st.vclock_ps.saturating_add(e.advance_ps);
    st.limit_ps = e.limit_ps;
    match st.mem.apply_delta(&e.delta) {
        Ok(()) => Ok(()),
        Err(_) => divergence("caller window delta does not apply"),
    }
}

/// Mirrors the shell's `ensure_child`: resolve (or create) the slot
/// the caller's child number names, binding it to the recorded id.
fn ensure_child(ks: &mut KState, caller: u32, child: ChildNum, child_id: u32) -> Result<()> {
    let node = state_mut(ks, caller)?.cur_node;
    let known = slot_mut(ks, caller)?.children.get(&child).copied();
    match known {
        Some(id) if id == child_id => Ok(()),
        Some(_) => divergence("trace child id does not match the children map"),
        None => {
            if ks.slots.contains_key(&child_id) {
                return divergence("trace reuses a space id for a new child");
            }
            let path = {
                let c = slot_mut(ks, caller)?;
                child_path(&c.path.clone(), child, &mut c.child_gens)
            };
            ks.slots.insert(child_id, KSlot::new(node, path));
            ks.stats.spaces_created += 1;
            slot_mut(ks, caller)?.children.insert(child, child_id);
            Ok(())
        }
    }
}

/// The recorded stop a rendezvous observed: the child must be idle
/// with state checked in (anything else means the trace interleaving
/// is impossible).
fn idle_reason(ks: &mut KState, child_id: u32) -> Result<StopReason> {
    let k = slot_mut(ks, child_id)?;
    match k.run {
        RunState::Idle(r) if k.state.is_some() => Ok(r),
        _ => divergence("rendezvous with a child that is not idle"),
    }
}

/// Mirrors `clone_into`: deep-copies `src`'s state and descendants
/// into `dst`, consuming the recorded fresh ids in creation order.
fn replay_clone(
    ks: &mut KState,
    src: u32,
    dst: u32,
    ids: &mut std::slice::Iter<'_, u32>,
) -> Result<()> {
    let (img, kids) = {
        let s = slot_mut(ks, src)?;
        let st = match s.state.as_ref() {
            Some(st) => st,
            None => return Err(KernelError::ChildActive),
        };
        (st.clone_image(), s.children.clone())
    };
    {
        let d = slot_mut(ks, dst)?;
        d.state = Some(Box::new(img));
        d.run = RunState::Idle(StopReason::Unstarted);
    }
    for (num, kid_src) in kids {
        let node = ks
            .slots
            .get(&kid_src)
            .and_then(|s| s.state.as_ref())
            .map(|s| s.home_node)
            .unwrap_or(0);
        let kid_id = match ids.next() {
            Some(id) => *id,
            None => return divergence("tree copy ran out of recorded ids"),
        };
        if ks.slots.contains_key(&kid_id) {
            return divergence("tree copy reuses a space id");
        }
        let path = {
            let d = slot_mut(ks, dst)?;
            child_path(&d.path.clone(), num, &mut d.child_gens)
        };
        ks.slots.insert(kid_id, KSlot::new(node, path));
        ks.stats.spaces_created += 1;
        slot_mut(ks, dst)?.children.insert(num, kid_id);
        replay_clone(ks, kid_src, kid_id, ids)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_put(
    ks: &mut KState,
    caller: u32,
    child: ChildNum,
    child_id: u32,
    fused: bool,
    entry: &EntryRec,
    put: &PutRec,
    tree_new_ids: &[u32],
    effects: &mut Vec<Effect>,
) -> Result<()> {
    if fused {
        ks.stats.put_gets += 1;
    } else {
        ks.stats.puts += 1;
    }
    apply_entry(ks, caller, entry)?;
    ensure_child(ks, caller, child, child_id)?;
    let was = idle_reason(ks, child_id)?;
    let child_v = state_mut(ks, child_id)?.vclock_ps;
    observe_stop(state_mut(ks, caller)?, child_v);

    // The options, in the live order, stopping at the first error —
    // which was returned to the recorded program and is part of
    // history, not a divergence.
    let costs = ks.costs;
    let mut counts = MemOpCounts::default();
    let mut installed = false;
    let mut child_st = match slot_mut(ks, child_id)?.state.take() {
        Some(st) => st,
        None => return divergence("idle child without state"),
    };
    let res: Result<()> = 'opts: {
        if let Some(r) = put.regs {
            child_st.regs = r;
        }
        if let Some(kind) = put.program {
            let terminal = slot_mut(ks, child_id)?.terminal;
            match install_action(was, terminal) {
                Ok(action) => {
                    let k = slot_mut(ks, child_id)?;
                    if action == InstallAction::Replace {
                        k.has_vehicle = false;
                        k.inline_vm = false;
                    }
                    k.terminal = false;
                    k.pending = Some(kind);
                    k.run = RunState::Idle(StopReason::Unstarted);
                    installed = true;
                }
                Err(e) => break 'opts Err(e),
            }
        }
        if let Some(c) = put.copy {
            let caller_st = match ks.slots.get(&caller).and_then(|s| s.state.as_deref()) {
                Some(st) => st,
                None => return divergence("caller state checked out"),
            };
            if let Err(e) = copy_op(&costs, caller_st, &mut child_st, c, &mut counts) {
                break 'opts Err(e);
            }
        }
        if let Some(r) = put.zero {
            if let Err(e) = zero_op(&costs, &mut child_st, r, true, &mut counts) {
                break 'opts Err(e);
            }
        }
        if let Some((r, p)) = put.perm {
            if let Err(e) = perm_op(&mut child_st, r, p) {
                break 'opts Err(e);
            }
        }
        if let Some(src_child) = put.tree_from {
            let src_id = match slot_mut(ks, caller)?.children.get(&src_child) {
                Some(id) => *id,
                None => {
                    break 'opts Err(KernelError::InvalidSpec("tree source child does not exist"));
                }
            };
            if src_id == child_id {
                break 'opts Err(KernelError::InvalidSpec("tree source equals destination"));
            }
            // The walk replaces the whole destination state; restore
            // the box so it operates on the slot, like the live walk.
            slot_mut(ks, child_id)?.state = Some(child_st);
            let walked = replay_clone(ks, src_id, child_id, &mut tree_new_ids.iter());
            child_st = match slot_mut(ks, child_id)?.state.take() {
                Some(st) => st,
                None => return divergence("tree copy lost the destination state"),
            };
            if let Err(e) = walked {
                // Structural divergences must still surface.
                if matches!(e, KernelError::ReplayDivergence(_)) {
                    slot_mut(ks, child_id)?.state = Some(child_st);
                    return Err(e);
                }
                break 'opts Err(e);
            }
        }
        if put.snap {
            snap_op(&costs, &mut child_st, &mut counts);
        }
        Ok(())
    };
    slot_mut(ks, child_id)?.state = Some(child_st);
    ks.stats.pages_copied += counts.pages_copied;
    ks.stats.pages_snapped += counts.pages_snapped;
    ks.stats.leaves_cloned += counts.leaves_cloned;
    if res.is_err() {
        // The live error path returns before the deferred caller
        // charge and before Start.
        return Ok(());
    }
    {
        let cst = state_mut(ks, caller)?;
        cst.vclock_ps = cst.vclock_ps.saturating_add(counts.charge_ps);
    }

    if let Some(s) = put.start {
        let start_ps = start_charge_ps(&costs, installed, was);
        let parent_v = {
            let cst = state_mut(ks, caller)?;
            cst.vclock_ps = cst.vclock_ps.saturating_add(start_ps);
            cst.vclock_ps
        };
        stamp_start(state_mut(ks, child_id)?, parent_v, s.limit_ns);
        let dispatch = ks.vm_dispatch;
        let action = {
            let k = slot_mut(ks, child_id)?;
            let pending = if !k.has_vehicle && !k.inline_vm {
                k.pending.take()
            } else {
                k.pending
            };
            start_action(
                dispatch,
                k.has_vehicle,
                k.inline_vm,
                pending,
                was,
                k.terminal,
            )
        };
        match action {
            Ok(StartAction::Spawn(kind)) => {
                let k = slot_mut(ks, child_id)?;
                k.run = RunState::Running;
                k.has_vehicle = true;
                ks.stats.threads_spawned += 1;
                effects.push(Effect::SpawnVehicle {
                    space: child_id,
                    program: kind,
                });
            }
            Ok(StartAction::RunnableInline) => {
                let k = slot_mut(ks, child_id)?;
                k.inline_vm = true;
                k.run = RunState::Runnable;
                effects.push(Effect::MarkRunnable { space: child_id });
            }
            Ok(StartAction::ResumeInline) => {
                slot_mut(ks, child_id)?.run = RunState::Runnable;
                effects.push(Effect::ResumeInline { space: child_id });
            }
            Ok(StartAction::ResumeVehicle) => {
                slot_mut(ks, child_id)?.run = RunState::Running;
                ks.stats.condvar_wakeups += 1;
                effects.push(Effect::ResumeVehicle { space: child_id });
            }
            // A failed Start was returned to the recorded program;
            // the charge above already happened, like live.
            Err(_) => {}
        }
    }
    Ok(())
}

fn apply_get(
    ks: &mut KState,
    caller: u32,
    child: ChildNum,
    child_id: u32,
    fused: bool,
    entry: Option<&EntryRec>,
    get: &GetSpec,
) -> Result<()> {
    if !fused {
        ks.stats.gets += 1;
    }
    if let Some(e) = entry {
        apply_entry(ks, caller, e)?;
    }
    ensure_child(ks, caller, child, child_id)?;
    idle_reason(ks, child_id)?;
    let costs = ks.costs;
    let policy = ks.policy;
    let mut counts = MemOpCounts::default();
    let mut caller_st = match slot_mut(ks, caller)?.state.take() {
        Some(st) => st,
        None => return divergence("caller state checked out"),
    };
    let mut child_st = match slot_mut(ks, child_id)?.state.take() {
        Some(st) => st,
        None => {
            slot_mut(ks, caller)?.state = Some(caller_st);
            return divergence("idle child without state");
        }
    };
    observe_stop(&mut caller_st, child_st.vclock_ps);
    let mut merge_recorded: Option<MergeStats> = None;
    let mut conflicted = false;
    let res: Result<()> = 'opts: {
        if let Some(c) = get.copy {
            if let Err(e) = copy_op(&costs, &child_st, &mut caller_st, c, &mut counts) {
                break 'opts Err(e);
            }
        }
        if let Some(region) = get.merge {
            match merge_op(
                &costs,
                policy,
                &mut caller_st,
                &child_st,
                region,
                get.merge_policy,
                &mut counts,
            ) {
                Err(e) => break 'opts Err(e),
                Ok((stats, conflict)) => {
                    merge_recorded = Some(stats);
                    if let Some(c) = conflict {
                        conflicted = true;
                        caller_st.vclock_ps = caller_st.vclock_ps.saturating_add(counts.charge_ps);
                        break 'opts Err(KernelError::Conflict(c));
                    }
                }
            }
        }
        if let Some(r) = get.zero {
            if let Err(e) = zero_op(&costs, &mut child_st, r, false, &mut counts) {
                break 'opts Err(e);
            }
        }
        if let Some((r, p)) = get.perm {
            if let Err(e) = perm_op(&mut child_st, r, p) {
                break 'opts Err(e);
            }
        }
        caller_st.vclock_ps = caller_st.vclock_ps.saturating_add(counts.charge_ps);
        Ok(())
    };
    let _ = res; // recorded history: errors went to the recorded program
    slot_mut(ks, caller)?.state = Some(caller_st);
    slot_mut(ks, child_id)?.state = Some(child_st);
    if let Some(stats) = merge_recorded {
        ks.stats.record_merge(&stats);
    }
    if conflicted {
        ks.stats.conflicts += 1;
    }
    ks.stats.pages_copied += counts.pages_copied;
    ks.stats.pages_snapped += counts.pages_snapped;
    ks.stats.leaves_cloned += counts.leaves_cloned;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_check_in(
    ks: &mut KState,
    space: u32,
    reason: StopReason,
    final_stop: bool,
    lost_state: bool,
    regs: Regs,
    advance_ps: u64,
    limit_ps: Option<u64>,
    insn_delta: u64,
    vm: VmCounters,
    delta: &SpaceDelta,
    effects: &mut Vec<Effect>,
) -> Result<()> {
    let costs = ks.costs;
    let inline = slot_mut(ks, space)?.inline_vm;
    if inline {
        ks.stats.vm_inline_runs += 1;
    } else {
        // A park or final check-in issues exactly one targeted wake of
        // the waiting parent; an inline drive wakes nobody (the one
        // waiter *is* the executing thread).
        ks.stats.condvar_wakeups += 1;
        effects.push(Effect::WakeParent { space });
    }
    {
        let k = slot_mut(ks, space)?;
        if lost_state {
            k.state = Some(Box::new(SpaceState::new(0)));
        }
        let st = match k.state.as_deref_mut() {
            Some(st) => st,
            None => return divergence("check-in without state"),
        };
        st.vclock_ps = st.vclock_ps.saturating_add(advance_ps);
        st.limit_ps = limit_ps;
        if st.mem.apply_delta(delta).is_err() {
            return divergence("check-in delta does not apply");
        }
        st.regs = regs;
        st.insn_count += insn_delta;
        check_in_charge(&costs, st, reason);
        k.run = RunState::Idle(reason);
        if final_stop {
            k.terminal = true;
        }
    }
    match stop_counter(reason) {
        Some(StopCounter::Ret) => ks.stats.rets += 1,
        Some(StopCounter::Trap) => ks.stats.traps += 1,
        Some(StopCounter::Limit) => ks.stats.limit_preemptions += 1,
        None => {}
    }
    ks.stats.vm_instructions += vm.instructions;
    ks.stats.vm_tlb_hits += vm.tlb_hits;
    ks.stats.vm_pages_walked += vm.pages_walked;
    ks.stats.vm_icache_hits += vm.icache_hits;
    ks.stats.vm_icache_fills += vm.icache_fills;
    Ok(())
}

/// Applies one recorded event to the kernel state, returning the
/// effects the shell would perform. Pure: the only inputs are `ks` and
/// `ev`, the only outputs are the mutation of `ks` and the returned
/// effects.
///
/// Errors are reserved for *structural divergence* (a trace that could
/// not have come from `ks`); errors the recorded programs themselves
/// observed are part of history and replay silently, exactly as they
/// applied live.
pub(crate) fn apply(ks: &mut KState, ev: &TraceEvent) -> Result<Vec<Effect>> {
    let mut effects = Vec::new();
    match ev {
        TraceEvent::Put {
            caller,
            child,
            child_id,
            fused,
            entry,
            put,
            tree_new_ids,
        } => apply_put(
            ks,
            *caller,
            *child,
            *child_id,
            *fused,
            entry,
            put,
            tree_new_ids,
            &mut effects,
        )?,
        TraceEvent::Get {
            caller,
            child,
            child_id,
            fused,
            entry,
            get,
        } => apply_get(ks, *caller, *child, *child_id, *fused, entry.as_ref(), get)?,
        TraceEvent::CheckIn {
            space,
            reason,
            final_stop,
            lost_state,
            regs,
            advance_ps,
            limit_ps,
            insn_delta,
            vm,
            delta,
        } => apply_check_in(
            ks,
            *space,
            *reason,
            *final_stop,
            *lost_state,
            *regs,
            *advance_ps,
            *limit_ps,
            *insn_delta,
            *vm,
            delta,
            &mut effects,
        )?,
        TraceEvent::DevRead { entry, dev, data } => {
            ks.stats.device_reads += 1;
            apply_entry(ks, 0, entry)?;
            let _ = (dev, data);
        }
        TraceEvent::DevWrite { entry, dev, data } => {
            ks.stats.device_write_bytes += data.len() as u64;
            apply_entry(ks, 0, entry)?;
            ks.outputs.entry(*dev).or_default().extend_from_slice(data);
            effects.push(Effect::PushOutput {
                dev: *dev,
                bytes: data.len() as u64,
            });
        }
        TraceEvent::Checkpoint { entry, leaves } => {
            // The leaf-proportional charge itself rode in on
            // `entry.advance_ps` (recorded at the live syscall), so the
            // window application below reproduces the exact virtual
            // time. What is re-derived here is the *basis*: the dirty
            // leaf count must match what the live kernel saw, or the
            // trace did not come from this state.
            apply_entry(ks, 0, entry)?;
            let actual = state_mut(ks, 0)?.mem.dirty_leaf_count() as u64;
            if actual != *leaves {
                return divergence("checkpoint dirty-leaf count does not match the trace");
            }
            ks.stats.checkpoints += 1;
            ks.stats.checkpoint_leaves += *leaves;
        }
        TraceEvent::RootExit { entry, regs, exit } => {
            apply_entry(ks, 0, entry)?;
            state_mut(ks, 0)?.regs = *regs;
            ks.root_exit = Some(*exit);
            effects.push(Effect::RootExited);
        }
    }
    Ok(effects)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The purity gate of the acceptance criteria: the core modules
    /// (`state.rs`, `apply.rs`) must contain no locks, condition
    /// variables, threads, host I/O, host clocks, or unsafe code.
    /// The rule itself (token list, comment stripping, test-boundary
    /// truncation) lives in `det_analyze::lint`, which also runs it
    /// workspace-wide as the `detlint` binary — this test pins the
    /// kernel build to the same single source of truth.
    #[test]
    fn core_modules_are_pure() {
        let sources = [
            ("state.rs", include_str!("state.rs")),
            ("apply.rs", include_str!("apply.rs")),
        ];
        for (name, src) in sources {
            let findings = det_analyze::lint::purity_violations(name, src);
            assert!(
                findings.is_empty(),
                "pure core module violations:\n{}",
                findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn charge_decrements_limit_and_reports_exhaustion() {
        let mut st = SpaceState::new(0);
        st.limit_ps = Some(100);
        assert!(!charge(&mut st, 40));
        assert_eq!(st.limit_ps, Some(60));
        assert_eq!(st.vclock_ps, 40);
        assert!(charge(&mut st, 60), "exact exhaustion preempts");
        assert_eq!(st.limit_ps, None, "limit cleared on preemption");
        assert_eq!(st.vclock_ps, 100);
    }

    #[test]
    fn install_action_rules() {
        assert_eq!(
            install_action(StopReason::Unstarted, false),
            Ok(InstallAction::Fresh)
        );
        assert_eq!(
            install_action(StopReason::Halted, false),
            Ok(InstallAction::Replace)
        );
        assert_eq!(
            install_action(StopReason::Trap(TrapKind::Panic), true),
            Ok(InstallAction::Replace)
        );
        assert_eq!(
            install_action(StopReason::Trap(TrapKind::Panic), false),
            Err(KernelError::ChildActive)
        );
        assert_eq!(
            install_action(StopReason::Ret, false),
            Err(KernelError::ChildActive)
        );
        assert_eq!(
            install_action(StopReason::LimitReached, true),
            Err(KernelError::ChildActive)
        );
    }

    #[test]
    fn start_action_dispatch_table() {
        use StartAction::*;
        // Fresh program, no vehicle yet.
        assert_eq!(
            start_action(
                VmDispatch::Inline,
                false,
                false,
                Some(ProgramKind::Vm),
                StopReason::Unstarted,
                false
            ),
            Ok(RunnableInline)
        );
        assert_eq!(
            start_action(
                VmDispatch::Threaded,
                false,
                false,
                Some(ProgramKind::Vm),
                StopReason::Unstarted,
                false
            ),
            Ok(Spawn(ProgramKind::Vm))
        );
        assert_eq!(
            start_action(
                VmDispatch::Inline,
                false,
                false,
                Some(ProgramKind::Native),
                StopReason::Unstarted,
                false
            ),
            Ok(Spawn(ProgramKind::Native))
        );
        assert_eq!(
            start_action(
                VmDispatch::Inline,
                false,
                false,
                None,
                StopReason::Unstarted,
                false
            ),
            Err(KernelError::NoProgram)
        );
        // Resumes.
        assert_eq!(
            start_action(
                VmDispatch::Inline,
                true,
                false,
                None,
                StopReason::Ret,
                false
            ),
            Ok(ResumeVehicle)
        );
        assert_eq!(
            start_action(
                VmDispatch::Inline,
                false,
                true,
                None,
                StopReason::Ret,
                false
            ),
            Ok(ResumeInline)
        );
        assert_eq!(
            start_action(
                VmDispatch::Inline,
                true,
                false,
                None,
                StopReason::Halted,
                false
            ),
            Err(KernelError::NoProgram)
        );
        assert_eq!(
            start_action(VmDispatch::Inline, true, false, None, StopReason::Ret, true),
            Err(KernelError::NoProgram)
        );
    }
}
