//! Deterministic fault injection.
//!
//! A [`FaultPlan`] arms the kernel with faults that fire at
//! *deterministic* coordinates — a space's lineage path, its per-space
//! syscall ordinal, its virtual clock — never wall-clock time or host
//! scheduling. Two runs of the same program under the same plan fault
//! at the identical kernel-mediated event, which is what makes faulted
//! runs replayable and crash-recovery conformance-checkable
//! (DESIGN.md §9).
//!
//! Every fault surfaces through existing, typed channels:
//!
//! | action                        | what the program observes          |
//! |-------------------------------|------------------------------------|
//! | [`FaultAction::KillKernel`]   | [`KernelError::Killed`] + shutdown |
//! | [`FaultAction::PanicVehicle`] | vehicle panic → terminal `Trap(Panic)` via the PR 5 die-without-check-in path |
//! | [`FaultAction::FailOp`]       | [`KernelError::FaultInjected`]     |
//!
//! No new panics escape the kernel and no deadlocks are introduced: a
//! killed kernel tears down through the ordinary shutdown sweep, and a
//! panicked vehicle checks in as a deterministic trap exactly like any
//! other program panic.
//!
//! [`KernelError::Killed`]: crate::KernelError::Killed
//! [`KernelError::FaultInjected`]: crate::KernelError::FaultInjected

use std::sync::atomic::{AtomicBool, Ordering};

/// Where in the kernel a fault is injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FaultSite {
    /// The syscall entry gate (every `Put`/`Get`/`Ret`/device/
    /// checkpoint entry probes this site).
    Syscall,
    /// A root device read or write.
    Device,
    /// A trace-sink append (probed only when the kernel records a
    /// trace).
    TraceSink,
    /// A kernel allocation (space/vehicle creation: `Put` and the Put
    /// half of `PutGet` probe this site).
    Alloc,
}

impl FaultSite {
    /// The static description [`KernelError::FaultInjected`] carries.
    ///
    /// [`KernelError::FaultInjected`]: crate::KernelError::FaultInjected
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Syscall => "injected syscall failure",
            FaultSite::Device => "injected device failure",
            FaultSite::TraceSink => "injected trace-sink failure",
            FaultSite::Alloc => "injected allocation failure",
        }
    }
}

/// What happens when a fault fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FaultAction {
    /// Set the kernel-wide shutdown flag and fail the triggering
    /// syscall with [`KernelError::Killed`] — the whole run crashes
    /// mid-flight, leaving the trace recorded so far as the crash log.
    ///
    /// [`KernelError::Killed`]: crate::KernelError::Killed
    KillKernel,
    /// Panic the triggering execution vehicle. The existing
    /// `catch_unwind` + final-check-in machinery converts this into a
    /// terminal `Trap(Panic)` observed deterministically by the
    /// parent.
    PanicVehicle,
    /// Fail the triggering operation with
    /// [`KernelError::FaultInjected`] and keep running.
    ///
    /// [`KernelError::FaultInjected`]: crate::KernelError::FaultInjected
    FailOp,
}

/// One armed fault: a site, an action, and deterministic trigger
/// coordinates. Unset coordinates match anything; each fault fires at
/// most once.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Injection site this fault arms.
    pub site: FaultSite,
    /// What firing does.
    pub action: FaultAction,
    /// Fire only in the space with this lineage path (e.g. `"/"` for
    /// the root, `"/3"` for its child number 3).
    pub path: Option<String>,
    /// Fire on the space's `n`-th syscall (0-based, counted per
    /// space).
    pub nth_syscall: Option<u64>,
    /// Fire at the first probe where the space's virtual clock is at
    /// least this many picoseconds.
    pub vtime_ps: Option<u64>,
}

impl Fault {
    /// A fault at `site` performing `action`, with no trigger
    /// coordinates yet (it would fire at the first probe of the site).
    pub fn new(site: FaultSite, action: FaultAction) -> Fault {
        Fault {
            site,
            action,
            path: None,
            nth_syscall: None,
            vtime_ps: None,
        }
    }

    /// Restricts the fault to the space with this lineage path.
    pub fn at_path(mut self, path: impl Into<String>) -> Fault {
        self.path = Some(path.into());
        self
    }

    /// Restricts the fault to the space's `n`-th syscall (0-based).
    pub fn at_syscall(mut self, n: u64) -> Fault {
        self.nth_syscall = Some(n);
        self
    }

    /// Restricts the fault to virtual time at or after `ps`
    /// picoseconds.
    pub fn at_vtime_ps(mut self, ps: u64) -> Fault {
        self.vtime_ps = Some(ps);
        self
    }

    /// True if the probe coordinates satisfy this fault's trigger.
    fn matches(&self, site: FaultSite, path: &str, nth: u64, vclock_ps: u64) -> bool {
        self.site == site
            && self.path.as_deref().is_none_or(|p| p == path)
            && self.nth_syscall.is_none_or(|n| n == nth)
            && self.vtime_ps.is_none_or(|v| vclock_ps >= v)
    }
}

/// A set of armed faults, installed at kernel construction via
/// [`KernelConfigBuilder::faults`].
///
/// [`KernelConfigBuilder::faults`]: crate::KernelConfigBuilder::faults
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The standard crash plan: kill the kernel at the root space's
    /// `n`-th syscall (0-based). This is what the conform CLI's
    /// `--kill-at <n>` arms.
    pub fn kill_at_syscall(n: u64) -> FaultPlan {
        FaultPlan::new().with(
            Fault::new(FaultSite::Syscall, FaultAction::KillKernel)
                .at_path("/")
                .at_syscall(n),
        )
    }

    /// True if the plan arms no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The armed faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Parses a textual fault spec (the conform CLI's `--fault`
    /// argument):
    ///
    /// ```text
    /// <action>@<site>[:<coord>[,<coord>...]]
    ///   action  kill | panic | fail
    ///   site    syscall | device | trace | alloc
    ///   coord   path=<lineage path> | n=<syscall ordinal> | vt=<picoseconds>
    /// ```
    ///
    /// Examples: `kill@syscall:path=/,n=12`, `fail@device:n=0`,
    /// `panic@syscall:path=/3,vt=1000000`.
    pub fn parse(spec: &str) -> std::result::Result<Fault, String> {
        let (action, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault spec `{spec}` missing `@` (action@site:coords)"))?;
        let action = match action {
            "kill" => FaultAction::KillKernel,
            "panic" => FaultAction::PanicVehicle,
            "fail" => FaultAction::FailOp,
            other => return Err(format!("unknown fault action `{other}` (kill|panic|fail)")),
        };
        let (site, coords) = match rest.split_once(':') {
            Some((s, c)) => (s, Some(c)),
            None => (rest, None),
        };
        let site = match site {
            "syscall" => FaultSite::Syscall,
            "device" => FaultSite::Device,
            "trace" => FaultSite::TraceSink,
            "alloc" => FaultSite::Alloc,
            other => {
                return Err(format!(
                    "unknown fault site `{other}` (syscall|device|trace|alloc)"
                ));
            }
        };
        let mut fault = Fault::new(site, action);
        for coord in coords.into_iter().flat_map(|c| c.split(',')) {
            let (key, val) = coord
                .split_once('=')
                .ok_or_else(|| format!("fault coordinate `{coord}` missing `=`"))?;
            match key {
                "path" => fault.path = Some(val.to_string()),
                "n" => {
                    fault.nth_syscall = Some(
                        val.parse()
                            .map_err(|_| format!("bad syscall ordinal `{val}`"))?,
                    )
                }
                "vt" => {
                    fault.vtime_ps = Some(
                        val.parse()
                            .map_err(|_| format!("bad virtual time `{val}`"))?,
                    )
                }
                other => return Err(format!("unknown fault coordinate `{other}` (path|n|vt)")),
            }
        }
        Ok(fault)
    }
}

/// A plan armed inside the kernel: each fault paired with its
/// fired-once latch.
#[derive(Default)]
pub(crate) struct ArmedFaults {
    faults: Vec<(Fault, AtomicBool)>,
}

impl ArmedFaults {
    pub(crate) fn new(plan: FaultPlan) -> ArmedFaults {
        ArmedFaults {
            faults: plan
                .faults
                .into_iter()
                .map(|f| (f, AtomicBool::new(false)))
                .collect(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Probes the plan at deterministic coordinates; returns the first
    /// matching unfired fault's action, latching it fired.
    ///
    /// The latch is an `AtomicBool` only because probes from different
    /// vehicles share the plan; whether a given fault fires — and at
    /// which event — is a pure function of the coordinates, which are
    /// themselves deterministic per space.
    pub(crate) fn probe(
        &self,
        site: FaultSite,
        path: &str,
        nth: u64,
        vclock_ps: u64,
    ) -> Option<FaultAction> {
        for (f, fired) in &self.faults {
            if f.matches(site, path, nth, vclock_ps)
                && fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return Some(f.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        let f = FaultPlan::parse("kill@syscall:path=/,n=12").unwrap();
        assert_eq!(f.action, FaultAction::KillKernel);
        assert_eq!(f.site, FaultSite::Syscall);
        assert_eq!(f.path.as_deref(), Some("/"));
        assert_eq!(f.nth_syscall, Some(12));
        let f = FaultPlan::parse("fail@device").unwrap();
        assert_eq!(f.action, FaultAction::FailOp);
        assert_eq!(f.site, FaultSite::Device);
        assert!(f.path.is_none() && f.nth_syscall.is_none() && f.vtime_ps.is_none());
        let f = FaultPlan::parse("panic@syscall:vt=5000").unwrap();
        assert_eq!(f.vtime_ps, Some(5000));
        assert!(FaultPlan::parse("boom@syscall").is_err());
        assert!(FaultPlan::parse("kill@clock").is_err());
        assert!(FaultPlan::parse("kill@syscall:n=x").is_err());
        assert!(FaultPlan::parse("kill").is_err());
    }

    #[test]
    fn probe_fires_once_at_matching_coordinates() {
        let armed = ArmedFaults::new(FaultPlan::kill_at_syscall(2));
        assert_eq!(armed.probe(FaultSite::Syscall, "/", 0, 0), None);
        assert_eq!(armed.probe(FaultSite::Syscall, "/3", 2, 0), None);
        assert_eq!(armed.probe(FaultSite::Device, "/", 2, 0), None);
        assert_eq!(
            armed.probe(FaultSite::Syscall, "/", 2, 0),
            Some(FaultAction::KillKernel)
        );
        // Latched: the same coordinates never fire twice.
        assert_eq!(armed.probe(FaultSite::Syscall, "/", 2, 0), None);
    }

    #[test]
    fn vtime_trigger_is_at_or_after() {
        let armed = ArmedFaults::new(
            FaultPlan::new()
                .with(Fault::new(FaultSite::Syscall, FaultAction::FailOp).at_vtime_ps(100)),
        );
        assert_eq!(armed.probe(FaultSite::Syscall, "/", 0, 99), None);
        assert_eq!(
            armed.probe(FaultSite::Syscall, "/", 1, 100),
            Some(FaultAction::FailOp)
        );
    }
}
