//! Deterministic checkpoint/restore bundles.
//!
//! A [`Checkpoint`] is a byte-stable snapshot of the pure kernel state
//! at a *rendezvous boundary* — an index into a recorded trace's event
//! sequence. The bundle serializes the whole
//! [`KState`](crate::state::KState) (every slot, its checked-in space
//! state, device outputs, deterministic stats) with each space's
//! memory encoded through the existing delta machinery
//! ([`AddressSpace::delta_since`] / [`AddressSpace::apply_delta`]):
//!
//! * **Full** encoding — the delta against an empty space, partitioned
//!   into clean and dirty pages so the restored space reproduces not
//!   just bytes and permissions but the exact dirty write-set and
//!   zero-frame sharing (both observable downstream, by merges and by
//!   checkpoint-cost accounting). Cost: O(touched leaves).
//! * **Incremental** encoding — the delta against the same space's
//!   image at the *previous* checkpoint, linked to it by digest
//!   ([`Checkpoint::parent`]). Cost: O(dirty leaves since the parent).
//!
//! Restoring a checkpoint and resuming the trace suffix is, by
//! construction, the same computation as replaying the whole trace:
//! both fold the identical event sequence through the pure
//! [`apply`](crate::apply) — the restore merely enters the fold at
//! event `boundary` with the serialized intermediate state instead of
//! at event 0 with the initial state. The crash-recovery conformance
//! scenarios (`crates/conform`) check the resulting bundle equality
//! byte-for-byte; DESIGN.md §9 gives the argument in full.
//!
//! Integrity: the bundle carries a format version and an FNV-1a
//! digest over the payload. A stale version fails with
//! [`KernelError::CheckpointVersion`] before anything is parsed; any
//! bit flip in the payload fails with
//! [`KernelError::CheckpointCorrupt`].
//!
//! One subtlety — *restorable* boundaries: a space's merge snapshot
//! (`snap`) is deliberately **not** serialized (a snapshot is an alias
//! web into the live frame graph; serializing it would destroy the
//! sharing that makes merges O(dirty)). A boundary is therefore
//! restorable only if no suffix merge depends on a prefix snapshot,
//! i.e. every merge-bearing `Get` in the suffix is preceded *within
//! the suffix* by a snap-bearing `Put` for the same child.
//! [`latest_restorable_boundary`] computes the latest such boundary at
//! or below a requested cut; boundary 0 (full replay) always
//! qualifies.

use std::collections::{BTreeMap, BTreeSet};

use det_memory::{AddressSpace, MergeStats, SpaceDelta};
use serde::{DeError, Deserialize, Serialize, Value, field};

use crate::apply::{TraceEvent, apply};
use crate::error::{KernelError, Result};
use crate::state::{KSlot, KState, RunState, SpaceState};
use crate::stats::KernelStats;
use crate::trace::{
    ReplayOutcome, Trace, TraceMeta, obj, outcome_of, p_delta, p_dispatch, p_exit, p_opt, p_policy,
    p_program_kind, p_regs, p_stop, req, tag, v_delta, v_dispatch, v_exit, v_opt, v_policy,
    v_program_kind, v_regs, v_stop,
};

/// The checkpoint bundle format this build writes and reads.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "detckpt";

/// FNV-1a over the payload bytes — the bundle's integrity digest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A serialized kernel state at a rendezvous boundary.
///
/// Produce one with [`Checkpoint::capture`] (one-shot, full) or a
/// [`Checkpointer`] (streaming, incremental); turn it back into a
/// running point with [`Checkpoint::restore`] /
/// [`restore_chain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    version: u32,
    boundary: u64,
    parent: Option<u64>,
    digest: u64,
    payload: String,
}

impl Checkpoint {
    /// The bundle format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The trace-event index this checkpoint was taken at: events
    /// `[0, boundary)` are baked in; resume feeds `[boundary, ..)`.
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    /// The digest of the parent checkpoint an incremental bundle's
    /// memory deltas are relative to; `None` for a full bundle.
    pub fn parent(&self) -> Option<u64> {
        self.parent
    }

    /// The FNV-1a integrity digest over the payload.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Captures a *full* checkpoint of `trace` at event index
    /// `boundary` by replaying the prefix through the pure core.
    ///
    /// The caller is responsible for picking a restorable boundary
    /// (see [`latest_restorable_boundary`]); capture itself succeeds
    /// at any structurally-valid prefix.
    pub fn capture(trace: &Trace, boundary: usize) -> Result<Checkpoint> {
        let events = trace
            .events
            .get(..boundary)
            .ok_or(KernelError::CheckpointMalformed(
                "boundary beyond trace end",
            ))?;
        let mut cp = Checkpointer::new(&trace.meta);
        for ev in events {
            cp.feed(ev)?;
        }
        Ok(cp.capture())
    }

    /// The canonical byte encoding: one ASCII header line
    /// (`detckpt <version> <digest>`), then the JSON payload.
    ///
    /// Byte-stable: two captures of the same trace prefix — in either
    /// VM dispatch mode — produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "{MAGIC} {} {:016x}\n{}",
            self.version, self.digest, self.payload
        )
        .into_bytes()
    }

    /// Parses and *verifies* a bundle: magic and header shape, then
    /// format version, then the integrity digest, then payload
    /// structure (boundary and parent link).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| KernelError::CheckpointMalformed("bundle is not utf-8"))?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or(KernelError::CheckpointMalformed("missing header line"))?;
        let mut parts = header.split(' ');
        if parts.next() != Some(MAGIC) {
            return Err(KernelError::CheckpointMalformed("bad magic"));
        }
        let version: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(KernelError::CheckpointMalformed("bad version field"))?;
        // Version gates everything downstream: a future format may
        // change the digest basis or payload shape, so it must fail
        // here, cleanly, not as corruption.
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(KernelError::CheckpointVersion {
                found: version,
                supported: CHECKPOINT_FORMAT_VERSION,
            });
        }
        let expected = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(KernelError::CheckpointMalformed("bad digest field"))?;
        if parts.next().is_some() {
            return Err(KernelError::CheckpointMalformed("trailing header fields"));
        }
        let actual = fnv1a64(payload.as_bytes());
        if actual != expected {
            return Err(KernelError::CheckpointCorrupt { expected, actual });
        }
        // Digest verified; the payload is authentic, so structural
        // errors past this point mean a producer bug, not tampering.
        let v: Value = serde_json::from_str(payload)
            .map_err(|_| KernelError::CheckpointMalformed("payload is not valid JSON"))?;
        let boundary: u64 = field(&v, "boundary")
            .map_err(|_| KernelError::CheckpointMalformed("payload missing boundary"))?;
        let parent: Option<u64> = field(&v, "parent")
            .map_err(|_| KernelError::CheckpointMalformed("payload missing parent link"))?;
        Ok(Checkpoint {
            version,
            boundary,
            parent,
            digest: expected,
            payload: payload.to_string(),
        })
    }

    /// Restores this bundle into a resumable kernel state.
    ///
    /// Only full bundles restore standalone; an incremental bundle
    /// needs its ancestry — use [`restore_chain`].
    pub fn restore(&self) -> Result<RestoredKernel> {
        restore_chain(std::slice::from_ref(self))
    }
}

/// Restores a full checkpoint followed by its incremental descendants
/// (each linked to its predecessor by [`Checkpoint::parent`]).
pub fn restore_chain(chain: &[Checkpoint]) -> Result<RestoredKernel> {
    let first = chain
        .first()
        .ok_or(KernelError::CheckpointMalformed("empty checkpoint chain"))?;
    if first.parent.is_some() {
        return Err(KernelError::CheckpointMalformed(
            "chain does not start at a full checkpoint",
        ));
    }
    let mut ks: Option<KState> = None;
    let mut prev_digest = None;
    for ckpt in chain {
        if ckpt.parent != prev_digest {
            return Err(KernelError::CheckpointMalformed(
                "broken parent link in checkpoint chain",
            ));
        }
        let v: Value = serde_json::from_str(&ckpt.payload)
            .map_err(|_| KernelError::CheckpointMalformed("payload is not valid JSON"))?;
        ks = Some(
            p_kstate(&v, ks.as_ref())
                .map_err(|_| KernelError::CheckpointMalformed("payload does not decode"))?,
        );
        prev_digest = Some(ckpt.digest);
    }
    let last = chain.last().expect("nonempty");
    Ok(RestoredKernel {
        ks: ks.expect("nonempty chain decoded"),
        boundary: last.boundary,
    })
}

/// A kernel state restored from a checkpoint, ready to resume.
pub struct RestoredKernel {
    ks: KState,
    boundary: u64,
}

impl RestoredKernel {
    /// The event index the state was captured at (resume feeds the
    /// trace's events from this index on).
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    /// The run parameters baked into the restored state.
    pub fn meta(&self) -> TraceMeta {
        TraceMeta {
            costs: self.ks.costs,
            policy: self.ks.policy,
            vm_dispatch: self.ks.vm_dispatch,
        }
    }

    /// Resumes by folding the trace suffix through the pure core —
    /// the second half of the recovery ≡ replay identity. The suffix
    /// must reach the root exit (it is the tail of a complete run).
    pub fn resume(self, suffix: &[TraceEvent]) -> Result<ReplayOutcome> {
        let mut ks = self.ks;
        for ev in suffix {
            apply(&mut ks, ev)?;
        }
        outcome_of(ks, true)
    }
}

impl crate::Kernel {
    /// Captures a full [`Checkpoint`] of a recorded trace at
    /// `boundary` (convenience alias of [`Checkpoint::capture`]).
    pub fn checkpoint(trace: &Trace, boundary: usize) -> Result<Checkpoint> {
        Checkpoint::capture(trace, boundary)
    }

    /// Restores a checkpoint into a resumable kernel state
    /// (convenience alias of [`Checkpoint::restore`]).
    pub fn restore(ckpt: &Checkpoint) -> Result<RestoredKernel> {
        ckpt.restore()
    }
}

/// The latest restorable boundary at or below `at_most`.
///
/// A boundary `j` is restorable iff no merge-bearing `Get` at suffix
/// index `m >= j` depends on a snap-bearing `Put` at prefix index
/// `s < j` (checkpoints do not serialize merge snapshots — see the
/// module docs). For each merge at `m` whose child's latest snapshot
/// was taken at `s`, the interval `(s, m]` is excluded; a merge with
/// no prior snapshot excludes nothing (it faulted `NoSnapshot` live,
/// and re-derives the same fault from any restore point). Boundary 0
/// is always restorable.
pub fn latest_restorable_boundary(trace: &Trace, at_most: usize) -> usize {
    let mut last_snap: BTreeMap<u32, usize> = BTreeMap::new();
    let mut excluded: Vec<(usize, usize)> = Vec::new();
    for (i, ev) in trace.events.iter().enumerate() {
        match ev {
            TraceEvent::Put { child_id, put, .. } if put.snap => {
                last_snap.insert(*child_id, i);
            }
            TraceEvent::Get { child_id, get, .. } if get.merge.is_some() => {
                if let Some(&s) = last_snap.get(child_id) {
                    excluded.push((s + 1, i));
                }
            }
            _ => {}
        }
    }
    let mut j = at_most.min(trace.events.len());
    loop {
        match excluded
            .iter()
            .filter(|&&(lo, hi)| j >= lo && j <= hi)
            .map(|&(lo, _)| lo)
            .min()
        {
            // Jump below the lowest excluding interval in one step.
            Some(lo) => j = lo - 1,
            None => return j,
        }
    }
}

/// Streaming checkpoint producer: feed it the trace events in order
/// and capture bundles at chosen boundaries. The first capture is
/// full; later captures are incremental — each space's memory encoded
/// as a delta against its image at the previous capture (cost
/// proportional to the dirty leaves since then), except spaces whose
/// delta basis was invalidated in between (created, snapshotted,
/// merged into, or state-replaced), which are re-encoded in full.
pub struct Checkpointer {
    ks: KState,
    fed: u64,
    /// Capture count (first capture emits a full bundle).
    captures: u64,
    /// Digest of the previous capture — the next bundle's parent link.
    parent: Option<u64>,
    /// Per-space memory image at the previous capture. Present iff the
    /// space can be delta-encoded against it; invalidated (removed)
    /// when an event breaks `delta_since`'s preconditions.
    bases: BTreeMap<u32, AddressSpace>,
}

impl Checkpointer {
    /// A checkpointer over a run with these parameters, positioned
    /// before the first event.
    pub fn new(meta: &TraceMeta) -> Checkpointer {
        Checkpointer {
            ks: KState::new(meta.costs, meta.policy, meta.vm_dispatch),
            fed: 0,
            captures: 0,
            parent: None,
            bases: BTreeMap::new(),
        }
    }

    /// The number of events fed so far — the boundary the next
    /// [`Checkpointer::capture`] stamps.
    pub fn boundary(&self) -> u64 {
        self.fed
    }

    /// Advances the shadow state by one recorded event.
    pub fn feed(&mut self, ev: &TraceEvent) -> Result<()> {
        // Invalidate delta bases *before* applying: a snapshot clears
        // the dirty set (breaking `delta_since`'s precondition
        // outright); a merge adopts foreign frames into the caller and
        // a lost-state check-in replaces the image wholesale (both
        // delta-encodable in principle, invalidated out of caution —
        // correctness over compactness).
        match ev {
            TraceEvent::Put { child_id, put, .. } if put.snap || put.tree_from.is_some() => {
                self.bases.remove(child_id);
            }
            TraceEvent::Get { caller, get, .. } if get.merge.is_some() => {
                self.bases.remove(caller);
            }
            TraceEvent::CheckIn {
                space,
                lost_state: true,
                ..
            } => {
                self.bases.remove(space);
            }
            _ => {}
        }
        apply(&mut self.ks, ev)?;
        self.fed += 1;
        Ok(())
    }

    /// Captures a bundle at the current boundary: full on the first
    /// call, incremental (delta against the previous capture) after.
    pub fn capture(&mut self) -> Checkpoint {
        let incremental = self.captures > 0;
        let parent = if incremental { self.parent } else { None };
        let payload_v = v_kstate(
            &self.ks,
            self.fed,
            parent,
            if incremental { Some(&self.bases) } else { None },
        );
        let payload = serde_json::to_string(&payload_v).expect("checkpoint encoding is infallible");
        let digest = fnv1a64(payload.as_bytes());
        // Re-base every space on this capture's image.
        self.bases = self
            .ks
            .slots
            .iter()
            .filter_map(|(&id, slot)| slot.state.as_ref().map(|st| (id, st.mem.clone())))
            .collect();
        self.captures += 1;
        self.parent = Some(digest);
        Checkpoint {
            version: CHECKPOINT_FORMAT_VERSION,
            boundary: self.fed,
            parent,
            digest,
            payload,
        }
    }
}

// ---------------------------------------------------------------------------
// KState codec.
//
// Same hand-written Value encoding style as the trace codec (the
// substrate types implement no serde traits); field order is fixed, so
// the rendered payload is byte-stable.
// ---------------------------------------------------------------------------

fn v_mem_full(mem: &AddressSpace) -> Value {
    // Against an empty base, every mapped page appears as a
    // Write/WriteZero op; partitioning by the live dirty set lets the
    // decoder reproduce the exact dirty write-set (clean pages applied
    // first, marks cleared, dirty pages applied after).
    let full = mem.delta_since(&AddressSpace::new());
    let dirty: BTreeSet<u64> = mem.dirty_vpns().into_iter().collect();
    let mut clean = SpaceDelta::default();
    let mut dirt = SpaceDelta::default();
    for p in full.pages {
        if dirty.contains(&p.vpn) {
            dirt.pages.push(p);
        } else {
            clean.pages.push(p);
        }
    }
    obj(vec![
        ("k", Value::Str("full".into())),
        ("clean", v_delta(&clean)),
        ("dirty", v_delta(&dirt)),
    ])
}

fn v_mem_delta(delta: &SpaceDelta) -> Value {
    obj(vec![
        ("k", Value::Str("delta".into())),
        ("delta", v_delta(delta)),
    ])
}

fn p_mem(v: &Value, prev: Option<&AddressSpace>) -> std::result::Result<AddressSpace, DeError> {
    match tag(v)? {
        "full" => {
            let clean = p_delta(req(v, "clean")?)?;
            let dirt = p_delta(req(v, "dirty")?)?;
            let mut mem = AddressSpace::new();
            mem.apply_delta(&clean)
                .map_err(|_| DeError::msg("bad clean delta"))?;
            mem.clear_dirty();
            mem.apply_delta(&dirt)
                .map_err(|_| DeError::msg("bad dirty delta"))?;
            Ok(mem)
        }
        "delta" => {
            let delta = p_delta(req(v, "delta")?)?;
            let mut mem = prev
                .ok_or_else(|| DeError::msg("incremental memory without a parent image"))?
                .clone();
            mem.apply_delta(&delta)
                .map_err(|_| DeError::msg("bad incremental delta"))?;
            Ok(mem)
        }
        _ => Err(DeError::msg("unknown memory encoding")),
    }
}

fn v_space_state(st: &SpaceState, mem: Value) -> Value {
    // `snap` is intentionally absent — see the module docs on
    // restorable boundaries.
    obj(vec![
        ("regs", v_regs(&st.regs)),
        ("mem", mem),
        ("vclock_ps", Value::UInt(st.vclock_ps)),
        ("limit_ps", st.limit_ps.to_value()),
        ("insn_count", Value::UInt(st.insn_count)),
        ("home_node", Value::UInt(st.home_node as u64)),
        ("cur_node", Value::UInt(st.cur_node as u64)),
    ])
}

fn p_space_state(
    v: &Value,
    prev_mem: Option<&AddressSpace>,
) -> std::result::Result<SpaceState, DeError> {
    Ok(SpaceState {
        regs: p_regs(req(v, "regs")?)?,
        mem: p_mem(req(v, "mem")?, prev_mem)?,
        snap: None,
        vclock_ps: field(v, "vclock_ps")?,
        limit_ps: field(v, "limit_ps")?,
        insn_count: field(v, "insn_count")?,
        home_node: field(v, "home_node")?,
        cur_node: field(v, "cur_node")?,
    })
}

fn v_run(r: &RunState) -> Value {
    match r {
        RunState::Idle(stop) => obj(vec![
            ("k", Value::Str("idle".into())),
            ("stop", v_stop(*stop)),
        ]),
        RunState::Runnable => obj(vec![("k", Value::Str("runnable".into()))]),
        RunState::Running => obj(vec![("k", Value::Str("running".into()))]),
        RunState::Destroyed => obj(vec![("k", Value::Str("destroyed".into()))]),
    }
}

fn p_run(v: &Value) -> std::result::Result<RunState, DeError> {
    Ok(match tag(v)? {
        "idle" => RunState::Idle(p_stop(req(v, "stop")?)?),
        "runnable" => RunState::Runnable,
        "running" => RunState::Running,
        "destroyed" => RunState::Destroyed,
        _ => return Err(DeError::msg("unknown run state")),
    })
}

fn v_pairs<K: Copy + Into<u64>, V2: Copy + Into<u64>>(map: &BTreeMap<K, V2>) -> Value {
    Value::Array(
        map.iter()
            .map(|(&k, &v)| Value::Array(vec![Value::UInt(k.into()), Value::UInt(v.into())]))
            .collect(),
    )
}

fn p_pairs<K: Ord + TryFrom<u64>, V2: TryFrom<u64>>(
    v: &Value,
) -> std::result::Result<BTreeMap<K, V2>, DeError> {
    let items = match v {
        Value::Array(items) => items,
        _ => return Err(DeError::msg("expected pair array")),
    };
    let mut map = BTreeMap::new();
    for item in items {
        let pair: Vec<u64> = Vec::from_value(item)?;
        if pair.len() != 2 {
            return Err(DeError::msg("expected [key, value] pair"));
        }
        let k = K::try_from(pair[0]).map_err(|_| DeError::msg("pair key out of range"))?;
        let val = V2::try_from(pair[1]).map_err(|_| DeError::msg("pair value out of range"))?;
        map.insert(k, val);
    }
    Ok(map)
}

fn v_slot(slot: &KSlot, mem: Option<Value>) -> Value {
    let state = match (slot.state.as_deref(), mem) {
        (Some(st), Some(mem)) => v_space_state(st, mem),
        _ => Value::Null,
    };
    obj(vec![
        ("children", v_pairs(&slot.children)),
        ("path", Value::Str(slot.path.clone())),
        ("child_gens", v_pairs(&slot.child_gens)),
        ("run", v_run(&slot.run)),
        ("state", state),
        ("pending", v_opt(&slot.pending, |p| v_program_kind(*p))),
        ("has_vehicle", Value::Bool(slot.has_vehicle)),
        ("inline_vm", Value::Bool(slot.inline_vm)),
        ("terminal", Value::Bool(slot.terminal)),
    ])
}

fn p_slot(v: &Value, prev_mem: Option<&AddressSpace>) -> std::result::Result<KSlot, DeError> {
    let state = match req(v, "state")? {
        Value::Null => None,
        sv => Some(Box::new(p_space_state(sv, prev_mem)?)),
    };
    Ok(KSlot {
        children: p_pairs(req(v, "children")?)?,
        path: field(v, "path")?,
        child_gens: p_pairs(req(v, "child_gens")?)?,
        run: p_run(req(v, "run")?)?,
        state,
        pending: p_opt(req(v, "pending")?, p_program_kind)?,
        has_vehicle: field(v, "has_vehicle")?,
        inline_vm: field(v, "inline_vm")?,
        terminal: field(v, "terminal")?,
    })
}

fn v_merge_stats(m: &MergeStats) -> Value {
    obj(vec![
        ("pages_scanned", Value::UInt(m.pages_scanned)),
        ("pages_skipped_clean", Value::UInt(m.pages_skipped_clean)),
        ("pages_unchanged", Value::UInt(m.pages_unchanged)),
        ("pages_skipped_shared", Value::UInt(m.pages_skipped_shared)),
        ("pages_aliased", Value::UInt(m.pages_aliased)),
        ("pages_diffed", Value::UInt(m.pages_diffed)),
        ("words_compared", Value::UInt(m.words_compared)),
        ("bytes_compared", Value::UInt(m.bytes_compared)),
        ("bytes_copied", Value::UInt(m.bytes_copied)),
        ("pages_mapped", Value::UInt(m.pages_mapped)),
    ])
}

fn p_merge_stats(v: &Value) -> std::result::Result<MergeStats, DeError> {
    Ok(MergeStats {
        pages_scanned: field(v, "pages_scanned")?,
        pages_skipped_clean: field(v, "pages_skipped_clean")?,
        pages_unchanged: field(v, "pages_unchanged")?,
        pages_skipped_shared: field(v, "pages_skipped_shared")?,
        pages_aliased: field(v, "pages_aliased")?,
        pages_diffed: field(v, "pages_diffed")?,
        words_compared: field(v, "words_compared")?,
        bytes_compared: field(v, "bytes_compared")?,
        bytes_copied: field(v, "bytes_copied")?,
        pages_mapped: field(v, "pages_mapped")?,
    })
}

/// Encodes the whole kernel state. `bases` selects incremental memory
/// encoding: spaces with a base image are delta-encoded against it,
/// everything else (and everything, when `bases` is `None`) in full.
fn v_kstate(
    ks: &KState,
    boundary: u64,
    parent: Option<u64>,
    bases: Option<&BTreeMap<u32, AddressSpace>>,
) -> Value {
    let slots = ks
        .slots
        .iter()
        .map(|(&id, slot)| {
            let mem = slot
                .state
                .as_deref()
                .map(|st| match bases.and_then(|b| b.get(&id)) {
                    Some(base) => v_mem_delta(&st.mem.delta_since(base)),
                    None => v_mem_full(&st.mem),
                });
            Value::Array(vec![Value::UInt(id as u64), v_slot(slot, mem)])
        })
        .collect();
    let outputs = ks
        .outputs
        .iter()
        .map(|(dev, bytes)| Value::Array(vec![dev.to_value(), hex_bytes(bytes)]))
        .collect();
    obj(vec![
        ("boundary", Value::UInt(boundary)),
        ("parent", parent.to_value()),
        (
            "meta",
            obj(vec![
                ("costs", ks.costs.to_value()),
                ("policy", v_policy(ks.policy)),
                ("vm_dispatch", v_dispatch(ks.vm_dispatch)),
            ]),
        ),
        ("slots", Value::Array(slots)),
        ("stats", ks.stats.to_value()),
        ("merge_totals", v_merge_stats(&ks.stats.merge_totals.0)),
        ("outputs", Value::Array(outputs)),
        ("root_exit", v_opt(&ks.root_exit, v_exit)),
    ])
}

/// Decodes a payload into a kernel state; `prev` supplies the parent
/// images incremental memory deltas apply to.
fn p_kstate(v: &Value, prev: Option<&KState>) -> std::result::Result<KState, DeError> {
    let mv = req(v, "meta")?;
    let costs = field(mv, "costs")?;
    let policy = p_policy(req(mv, "policy")?)?;
    let vm_dispatch = p_dispatch(req(mv, "vm_dispatch")?)?;
    let mut slots = BTreeMap::new();
    match req(v, "slots")? {
        Value::Array(items) => {
            for item in items {
                let pair = match item {
                    Value::Array(p) if p.len() == 2 => p,
                    _ => return Err(DeError::msg("expected [id, slot] pair")),
                };
                let id = u32::from_value(&pair[0])?;
                let prev_mem = prev
                    .and_then(|p| p.slots.get(&id))
                    .and_then(|s| s.state.as_deref())
                    .map(|st| &st.mem);
                slots.insert(id, p_slot(&pair[1], prev_mem)?);
            }
        }
        _ => return Err(DeError::msg("expected slot array")),
    }
    let mut stats: KernelStats = field(v, "stats")?;
    stats.merge_totals.0 = p_merge_stats(req(v, "merge_totals")?)?;
    let mut outputs = BTreeMap::new();
    match req(v, "outputs")? {
        Value::Array(items) => {
            for item in items {
                let pair = match item {
                    Value::Array(p) if p.len() == 2 => p,
                    _ => return Err(DeError::msg("expected [device, bytes] pair")),
                };
                let dev = crate::device::DeviceId::from_value(&pair[0])?;
                outputs.insert(dev, unhex_bytes(&pair[1])?);
            }
        }
        _ => return Err(DeError::msg("expected output array")),
    }
    Ok(KState {
        costs,
        policy,
        vm_dispatch,
        slots,
        stats,
        outputs,
        root_exit: p_opt(req(v, "root_exit")?, p_exit)?,
    })
}

fn hex_bytes(bytes: &[u8]) -> Value {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    Value::Str(s)
}

fn unhex_bytes(v: &Value) -> std::result::Result<Vec<u8>, DeError> {
    let s = match v {
        Value::Str(s) => s,
        _ => return Err(DeError::msg("expected hex string")),
    };
    if s.len() % 2 != 0 {
        return Err(DeError::msg("odd-length hex string"));
    }
    let digit = |c: u8| -> std::result::Result<u8, DeError> {
        (c as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| DeError::msg("bad hex digit"))
    };
    s.as_bytes()
        .chunks(2)
        .map(|p| Ok(digit(p[0])? << 4 | digit(p[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use det_memory::{Perm, Region};

    #[test]
    fn digest_rejects_single_bit_corruption() {
        let trace = Trace {
            meta: TraceMeta {
                costs: crate::CostModel::default(),
                policy: det_memory::ConflictPolicy::Strict,
                vm_dispatch: crate::VmDispatch::Inline,
            },
            events: Vec::new(),
        };
        let ckpt = Checkpoint::capture(&trace, 0).unwrap();
        let mut bytes = ckpt.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), ckpt);
        // Flip one bit somewhere inside the payload.
        let n = bytes.len();
        bytes[n - 10] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(KernelError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn stale_format_version_errors_cleanly() {
        let trace = Trace {
            meta: TraceMeta {
                costs: crate::CostModel::zero(),
                policy: det_memory::ConflictPolicy::Strict,
                vm_dispatch: crate::VmDispatch::Inline,
            },
            events: Vec::new(),
        };
        let bytes = Checkpoint::capture(&trace, 0).unwrap().to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        let stale = text.replacen("detckpt 1 ", "detckpt 999 ", 1);
        match Checkpoint::from_bytes(stale.as_bytes()) {
            Err(KernelError::CheckpointVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, CHECKPOINT_FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bundles_error_cleanly() {
        assert!(matches!(
            Checkpoint::from_bytes(b"\xff\xfe"),
            Err(KernelError::CheckpointMalformed(_))
        ));
        assert!(matches!(
            Checkpoint::from_bytes(b"nope 1 0\n{}"),
            Err(KernelError::CheckpointMalformed(_))
        ));
        assert!(matches!(
            Checkpoint::from_bytes(b"detckpt x 0\n{}"),
            Err(KernelError::CheckpointMalformed(_))
        ));
    }

    #[test]
    fn full_memory_encoding_roundtrips_dirty_and_zero_pages() {
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0x1000, 0x4000), Perm::RW).unwrap();
        mem.write_u64(0x1000, 0xdead_beef).unwrap();
        // Page at 0x2000 stays a clean zero page; 0x3000 a dirty one.
        mem.write_u8(0x3000, 0).unwrap();
        let v = v_mem_full(&mem);
        let back = p_mem(&v, None).unwrap();
        assert_eq!(back.content_digest(), mem.content_digest());
        assert_eq!(back.dirty_vpns(), mem.dirty_vpns());
        assert_eq!(back.dirty_leaf_count(), mem.dirty_leaf_count());
        assert_eq!(back.page_digests(), mem.page_digests());
    }

    #[test]
    fn restorable_boundary_excludes_snap_to_merge_windows() {
        use crate::apply::{EntryRec, PutRec};
        use crate::syscall::GetSpec;
        let put = |snap: bool| TraceEvent::Put {
            caller: 0,
            child: 1,
            child_id: 1,
            fused: false,
            entry: EntryRec::default(),
            put: PutRec {
                regs: None,
                program: None,
                copy: None,
                zero: None,
                perm: None,
                snap,
                tree_from: None,
                start: None,
            },
            tree_new_ids: Vec::new(),
        };
        let get = |merge: bool| TraceEvent::Get {
            caller: 0,
            child: 1,
            child_id: 1,
            fused: false,
            entry: Some(EntryRec::default()),
            get: GetSpec {
                merge: merge.then(|| Region::new(0x1000, 0x2000)),
                ..GetSpec::default()
            },
        };
        let trace = Trace {
            meta: TraceMeta {
                costs: crate::CostModel::zero(),
                policy: det_memory::ConflictPolicy::Strict,
                vm_dispatch: crate::VmDispatch::Inline,
            },
            // 0: snap-put, 1: plain get, 2: merge-get, 3: plain put.
            events: vec![put(true), get(false), get(true), put(false)],
        };
        // Boundaries 1 and 2 sit inside the snapshot→merge window.
        assert_eq!(latest_restorable_boundary(&trace, 4), 4);
        assert_eq!(latest_restorable_boundary(&trace, 3), 3);
        assert_eq!(latest_restorable_boundary(&trace, 2), 0);
        assert_eq!(latest_restorable_boundary(&trace, 1), 0);
        assert_eq!(latest_restorable_boundary(&trace, 0), 0);
    }
}
