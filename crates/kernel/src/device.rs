//! I/O devices: the only sources of nondeterminism, mediated by the
//! root space (§2.1, §3.1).
//!
//! All nondeterministic inputs are explicit events consumed through
//! the device hub. In [`IoMode::Record`] every consumed input is
//! appended to an [`IoLog`]; rerunning the kernel in
//! [`IoMode::Replay`] with that log reproduces the execution
//! bit-for-bit — the paper's replay-debugging/intrusion-analysis use
//! case (§2.1).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Device identifiers.
///
/// `Ord` is part of the contract: device outputs are keyed by
/// `BTreeMap<DeviceId, _>` so every serialized artifact enumerates
/// them in one canonical order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum DeviceId {
    /// Console input (host-pushed bytes).
    ConsoleIn,
    /// Console output.
    ConsoleOut,
    /// A real-time clock: reads return 8-byte little-endian
    /// timestamps. Host-pushed values if any, else synthesized from a
    /// deterministic step counter.
    Clock,
    /// An entropy source: reads return 8 bytes. Host-pushed values if
    /// any, else synthesized from a seeded generator.
    Random,
}

/// One consumed nondeterministic input.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InputEvent {
    /// Sequence number (order of consumption by the root space).
    pub seq: u64,
    /// Which device produced it.
    pub device: DeviceId,
    /// Payload (`None` encodes "no input available").
    pub data: Option<Vec<u8>>,
}

/// A log of all nondeterministic inputs an execution consumed.
#[derive(Clone, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IoLog {
    /// Events in consumption order.
    pub events: Vec<InputEvent>,
}

impl IoLog {
    /// Serializes the log to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("log serializes")
    }

    /// Parses a log from JSON.
    pub fn from_json(s: &str) -> Result<IoLog, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Whether the kernel records fresh inputs or replays a log.
#[derive(Clone, Debug, Default)]
pub enum IoMode {
    /// Consume real (host-pushed or synthesized) inputs, recording them.
    #[default]
    Record,
    /// Reproduce inputs from a previous run's log.
    Replay(IoLog),
}

/// The kernel's device state.
#[derive(Debug)]
pub(crate) struct DeviceHub {
    mode: IoMode,
    recorded: IoLog,
    replay_next: usize,
    inputs: BTreeMap<DeviceId, VecDeque<Vec<u8>>>,
    outputs: BTreeMap<DeviceId, Vec<u8>>,
    clock_now_ns: u64,
    clock_step_ns: u64,
    rng_state: u64,
    seq: u64,
}

impl DeviceHub {
    pub(crate) fn new(mode: IoMode) -> DeviceHub {
        DeviceHub {
            mode,
            recorded: IoLog::default(),
            replay_next: 0,
            inputs: BTreeMap::new(),
            outputs: BTreeMap::new(),
            clock_now_ns: 0,
            clock_step_ns: 1_000_000,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            seq: 0,
        }
    }

    /// Host side: queue input for a device.
    pub(crate) fn push_input(&mut self, dev: DeviceId, data: Vec<u8>) {
        self.inputs.entry(dev).or_default().push_back(data);
    }

    /// Root space: consume the next input from `dev`.
    pub(crate) fn read(
        &mut self,
        dev: DeviceId,
    ) -> Result<Option<Vec<u8>>, crate::error::KernelError> {
        let data = match &self.mode {
            IoMode::Replay(log) => {
                let ev = log
                    .events
                    .get(self.replay_next)
                    .ok_or(crate::error::KernelError::ReplayDivergence("log exhausted"))?;
                if ev.device != dev {
                    return Err(crate::error::KernelError::ReplayDivergence(
                        "device mismatch",
                    ));
                }
                self.replay_next += 1;
                ev.data.clone()
            }
            IoMode::Record => {
                let fresh = match self.inputs.get_mut(&dev).and_then(|q| q.pop_front()) {
                    Some(d) => Some(d),
                    None => match dev {
                        DeviceId::Clock => {
                            self.clock_now_ns += self.clock_step_ns;
                            Some(self.clock_now_ns.to_le_bytes().to_vec())
                        }
                        DeviceId::Random => {
                            // SplitMix64 step: deterministic default
                            // entropy when the host supplies none.
                            self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                            let mut z = self.rng_state;
                            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                            z ^= z >> 31;
                            Some(z.to_le_bytes().to_vec())
                        }
                        _ => None,
                    },
                };
                self.recorded.events.push(InputEvent {
                    seq: self.seq,
                    device: dev,
                    data: fresh.clone(),
                });
                self.seq += 1;
                fresh
            }
        };
        Ok(data)
    }

    /// Root space: append output bytes to `dev`.
    pub(crate) fn write(&mut self, dev: DeviceId, data: &[u8]) {
        self.outputs.entry(dev).or_default().extend_from_slice(data);
    }

    pub(crate) fn into_parts(self) -> (BTreeMap<DeviceId, Vec<u8>>, IoLog) {
        (self.outputs, self.recorded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushed_input_consumed_fifo_and_recorded() {
        let mut hub = DeviceHub::new(IoMode::Record);
        hub.push_input(DeviceId::ConsoleIn, b"one".to_vec());
        hub.push_input(DeviceId::ConsoleIn, b"two".to_vec());
        assert_eq!(
            hub.read(DeviceId::ConsoleIn).unwrap(),
            Some(b"one".to_vec())
        );
        assert_eq!(
            hub.read(DeviceId::ConsoleIn).unwrap(),
            Some(b"two".to_vec())
        );
        assert_eq!(hub.read(DeviceId::ConsoleIn).unwrap(), None);
        let (_, log) = hub.into_parts();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[2].data, None);
    }

    #[test]
    fn synthesized_clock_and_random_are_deterministic() {
        let run = || {
            let mut hub = DeviceHub::new(IoMode::Record);
            let c1 = hub.read(DeviceId::Clock).unwrap();
            let r1 = hub.read(DeviceId::Random).unwrap();
            (c1, r1)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_reproduces_and_detects_divergence() {
        let mut hub = DeviceHub::new(IoMode::Record);
        hub.push_input(DeviceId::ConsoleIn, b"x".to_vec());
        let a = hub.read(DeviceId::ConsoleIn).unwrap();
        let b = hub.read(DeviceId::Clock).unwrap();
        let (_, log) = hub.into_parts();

        let mut replay = DeviceHub::new(IoMode::Replay(log.clone()));
        assert_eq!(replay.read(DeviceId::ConsoleIn).unwrap(), a);
        assert_eq!(replay.read(DeviceId::Clock).unwrap(), b);
        // Exhausted log.
        assert!(replay.read(DeviceId::Clock).is_err());

        // Wrong device order diverges.
        let mut replay = DeviceHub::new(IoMode::Replay(log));
        assert!(replay.read(DeviceId::Clock).is_err());
    }

    #[test]
    fn outputs_accumulate() {
        let mut hub = DeviceHub::new(IoMode::Record);
        hub.write(DeviceId::ConsoleOut, b"hello ");
        hub.write(DeviceId::ConsoleOut, b"world");
        let (out, _) = hub.into_parts();
        assert_eq!(out[&DeviceId::ConsoleOut], b"hello world");
    }

    #[test]
    fn log_json_roundtrip() {
        let log = IoLog {
            events: vec![InputEvent {
                seq: 0,
                device: DeviceId::Random,
                data: Some(vec![1, 2, 3]),
            }],
        };
        assert_eq!(IoLog::from_json(&log.to_json()).unwrap(), log);
    }
}
