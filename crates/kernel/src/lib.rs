//! The Determinator microkernel (OSDI 2010), reproduced as a library.
//!
//! The kernel executes application code in an arbitrarily deep
//! hierarchy of *spaces* (§3.1): single control flows with private
//! registers and private virtual memory, no globally shared state, and
//! exactly three system calls — [`SpaceCtx::put`], [`SpaceCtx::get`],
//! [`SpaceCtx::ret`] — each interacting only with the space's
//! immediate parent or children. Nondeterministic inputs exist only as
//! explicit [`DeviceId`] events readable by the root space, which can
//! record and replay them.
//!
//! Because Put/Get/Ret reduce to blocking one-to-one channels, the
//! space hierarchy forms a deterministic Kahn network: every
//! unprivileged computation is repeatable regardless of how the host
//! schedules the execution vehicles. The integration tests assert this
//! empirically by rerunning racy workloads under perturbed host
//! schedules and comparing memory digests.
//!
//! Time is *virtual* (see `DESIGN.md`): spaces carry virtual clocks,
//! charged by declared compute work (native programs), exact
//! instruction counts (VM programs), and the [`CostModel`] for kernel
//! operations. Rendezvous propagates clocks (`parent = max(parent,
//! child)`), so a run's root clock is the parallel makespan that the
//! paper's wall-clock figures measure.
//!
//! # Examples
//!
//! Fork-join with private workspaces — the paper's `x = y ∥ y = x`
//! swap (§2.2), race-free by construction:
//!
//! ```
//! use det_kernel::{CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec};
//! use det_memory::{Perm, Region};
//!
//! let shared = Region::new(0x1000, 0x2000);
//! let outcome = Kernel::new(KernelConfig::default()).run(move |ctx| {
//!     ctx.mem_mut().map_zero(shared, Perm::RW)?;
//!     ctx.mem_mut().write_u64(0x1000, 1)?; // x
//!     ctx.mem_mut().write_u64(0x1008, 2)?; // y
//!     for (i, prog) in [
//!         Program::native(|c: &mut det_kernel::SpaceCtx| {
//!             let y = c.mem().read_u64(0x1008)?;
//!             c.mem_mut().write_u64(0x1000, y)?; // x = y
//!             Ok(0)
//!         }),
//!         Program::native(|c: &mut det_kernel::SpaceCtx| {
//!             let x = c.mem().read_u64(0x1000)?;
//!             c.mem_mut().write_u64(0x1008, x)?; // y = x
//!             Ok(0)
//!         }),
//!     ]
//!     .into_iter()
//!     .enumerate()
//!     {
//!         ctx.put(
//!             i as u64,
//!             PutSpec::new()
//!                 .program(prog)
//!                 .copy(CopySpec::mirror(shared))
//!                 .snap()
//!                 .start(),
//!         )?;
//!     }
//!     for i in 0..2u64 {
//!         ctx.get(i, GetSpec::new().merge(shared))?;
//!     }
//!     assert_eq!(ctx.mem().read_u64(0x1000)?, 2); // swapped
//!     assert_eq!(ctx.mem().read_u64(0x1008)?, 1);
//!     Ok(0)
//! });
//! assert_eq!(outcome.exit, Ok(0));
//! ```

#![warn(missing_docs)]

mod apply;
mod checkpoint;
mod cost;
mod ctx;
mod device;
mod error;
mod fault;
mod ids;
mod kernel;
mod program;
mod state;
mod stats;
mod syscall;
mod trace;
pub mod wire;

pub use apply::{Effect, EntryRec, PutRec, TraceEvent, VmCounters};
pub use checkpoint::{
    CHECKPOINT_FORMAT_VERSION, Checkpoint, Checkpointer, RestoredKernel,
    latest_restorable_boundary, restore_chain,
};
pub use cost::{CostModel, ns_to_ps, ps_to_ns};
pub use ctx::{SpaceCtx, full_user_region};
pub use device::{DeviceId, InputEvent, IoLog, IoMode};
pub use error::{KernelError, Result, TrapKind};
pub use fault::{Fault, FaultAction, FaultPlan, FaultSite};
pub use ids::{ChildNum, NODE_SHIFT, SpaceId, child_index, child_on_node, node_field};
pub use kernel::{
    ClusterHooks, InputHandle, Kernel, KernelConfig, KernelConfigBuilder, RunOutcome, VmDispatch,
};
pub use program::{NativeEntry, NativeResult, Program};
pub use state::ProgramKind;
pub use stats::{HostStats, KernelStats, MergeStatsSerde};
pub use syscall::{CopySpec, GetResult, GetSpec, PutResult, PutSpec, StartSpec, StopReason};
pub use trace::{ReplayOutcome, SpaceArtifact, Trace, TraceMeta, TraceSink};

// Re-export the substrate types the kernel API exposes.
pub use det_analyze::{Footprint, PageSet};
pub use det_memory::{
    AddressSpace, ConflictPolicy, MemError, MergeConflict, MergeStats, Perm, Region,
};
pub use det_vm::Regs;
