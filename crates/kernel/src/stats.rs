//! Kernel operation counters.

use det_memory::MergeStats;
use serde::{Deserialize, Serialize};

/// Counts of kernel operations over a run.
///
/// These are *host-side observability*: they are returned in
/// [`crate::RunOutcome`], not exposed to unprivileged spaces (their
/// instantaneous values depend on host scheduling, which spaces must
/// not observe). The benchmark harness uses them to report the real
/// operation counts behind every virtual-time figure.
#[derive(Clone, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
pub struct KernelStats {
    /// `Put` calls.
    pub puts: u64,
    /// `Get` calls.
    pub gets: u64,
    /// Fused `PutGet` exchange calls ([`crate::SpaceCtx::put_get`]):
    /// one kernel entry performing a resume and the collection of the
    /// child's next stop. Not double-counted in `puts`/`gets`.
    pub put_gets: u64,
    /// `Ret` calls (explicit).
    pub rets: u64,
    /// Traps (implicit rets).
    pub traps: u64,
    /// Limit preemptions.
    pub limit_preemptions: u64,
    /// Spaces created.
    pub spaces_created: u64,
    /// Host threads spawned as execution vehicles.
    pub threads_spawned: u64,
    /// Pages virtually copied (COW) by `Copy`/`Zero` options.
    pub pages_copied: u64,
    /// Pages cloned into snapshots by `Snap`.
    pub pages_snapped: u64,
    /// Page-table leaves shared structurally by `Copy` and `Snap`
    /// (each covers up to `det_memory::PAGES_PER_LEAF` pages in O(1));
    /// `leaves_cloned` vs `pages_copied + pages_snapped` is the
    /// page-table-work reduction the structurally-shared table buys.
    pub leaves_cloned: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Accumulated merge statistics.
    #[serde(skip)]
    pub merge_totals: MergeStatsSerde,
    /// Merge conflicts detected.
    pub conflicts: u64,
    /// Cross-node space migrations.
    pub migrations: u64,
    /// Device input events consumed.
    pub device_reads: u64,
    /// Device output bytes written.
    pub device_write_bytes: u64,
    /// VM instructions retired across all spaces.
    pub vm_instructions: u64,
    /// VM software-TLB hits (loads + stores served from a cached
    /// translation, skipping the page-table walk).
    pub vm_tlb_hits: u64,
    /// Page-table walks performed on the VM's behalf (TLB fills plus
    /// slow-path accesses). `vm_pages_walked / vm_instructions` is the
    /// per-instruction translation overhead the TLB exists to crush.
    pub vm_pages_walked: u64,
    /// VM decoded-instruction cache hits (fetch + decode skipped).
    pub vm_icache_hits: u64,
    /// VM decoded-instruction cache fills (full fetch + decode).
    pub vm_icache_fills: u64,
    /// Condvar notifications issued by the rendezvous engine on the
    /// park / resume / final-check-in paths (shutdown broadcasts are
    /// not counted). Every notify targets exactly one known waiter, so
    /// this is bounded by rendezvous *events* — independent of how
    /// many other spaces sit parked. A deterministic count: it is a
    /// pure function of the kernel-mediated event history, and the
    /// `targeted_wakeups_*` tests lock in the exact value so a
    /// broadcast (thundering-herd) wakeup can't silently return.
    pub condvar_wakeups: u64,
    /// Times a leaf VM space was executed inline on the thread waiting
    /// for it (zero-context-switch rendezvous; see DESIGN.md §6).
    pub vm_inline_runs: u64,
    /// Checkpoint marks taken (the root `Checkpoint` syscall).
    pub checkpoints: u64,
    /// Dirty page-table leaves persisted across all checkpoint marks —
    /// the incremental-checkpoint work metric the per-leaf virtual-time
    /// charge is proportional to.
    pub checkpoint_leaves: u64,
}

/// Counters that depend on *host* scheduling, segregated from
/// [`KernelStats`] so the latter is fully deterministic — every field
/// of `KernelStats` is a pure function of the kernel-mediated event
/// history and is compared without carve-outs by trace replay and the
/// conformance harness. `HostStats` is observability only: two
/// identical runs may legitimately differ here.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
pub struct HostStats {
    /// Waits that woke without their predicate holding (spurious or
    /// raced wakeups).
    pub spurious_wakeups: u64,
}

/// Wrapper keeping [`MergeStats`] (an external type) inside the
/// serializable stats without requiring serde on `det-memory`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct MergeStatsSerde(pub MergeStats);

impl KernelStats {
    /// Adds one merge's statistics.
    pub fn record_merge(&mut self, s: &MergeStats) {
        self.merges += 1;
        self.merge_totals.0.accumulate(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulation() {
        let mut k = KernelStats::default();
        let s = MergeStats {
            pages_scanned: 2,
            pages_skipped_clean: 5,
            words_compared: 16,
            bytes_copied: 10,
            ..Default::default()
        };
        k.record_merge(&s);
        k.record_merge(&s);
        assert_eq!(k.merges, 2);
        assert_eq!(k.merge_totals.0.pages_scanned, 4);
        assert_eq!(k.merge_totals.0.pages_skipped_clean, 10);
        assert_eq!(k.merge_totals.0.words_compared, 32);
        assert_eq!(k.merge_totals.0.bytes_copied, 20);
    }
}
