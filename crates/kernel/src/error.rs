//! Kernel errors and processor-style traps.

use det_memory::{MemError, MergeConflict};
use det_vm::VmTrap;

/// Why a space trapped.
///
/// A trap stops the space and returns control to its parent with this
/// status — the paper's "implicit Ret" (§3.2). Conflicts detected at
/// merge time are traps too: "a programming error, like an illegal
/// memory access or divide-by-zero".
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum TrapKind {
    /// Memory fault (unmapped address or permission violation).
    Mem(MemError),
    /// Integer division by zero.
    DivideByZero,
    /// Undefined instruction encoding.
    IllegalInstruction(u8),
    /// Misaligned program counter.
    PcMisaligned(u64),
    /// A native program panicked.
    Panic,
    /// A write/write merge conflict at the given address.
    Conflict(u64),
    /// Any other fault, with a static description.
    Fault(&'static str),
}

impl From<VmTrap> for TrapKind {
    fn from(t: VmTrap) -> TrapKind {
        match t {
            VmTrap::Mem(e) => TrapKind::Mem(e),
            VmTrap::IllegalInstruction(b) => TrapKind::IllegalInstruction(b),
            VmTrap::DivideByZero => TrapKind::DivideByZero,
            VmTrap::PcMisaligned(pc) => TrapKind::PcMisaligned(pc),
        }
    }
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::Mem(e) => write!(f, "memory fault: {e}"),
            TrapKind::DivideByZero => write!(f, "divide by zero"),
            TrapKind::IllegalInstruction(b) => write!(f, "illegal instruction {b:#04x}"),
            TrapKind::PcMisaligned(pc) => write!(f, "misaligned pc {pc:#x}"),
            TrapKind::Panic => write!(f, "program panicked"),
            TrapKind::Conflict(addr) => write!(f, "merge conflict at {addr:#x}"),
            TrapKind::Fault(s) => write!(f, "fault: {s}"),
        }
    }
}

/// Errors returned by kernel operations to the invoking space.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum KernelError {
    /// A memory operation faulted.
    Mem(MemError),
    /// A `Get`+`Merge` found a write/write conflict; the merge was not
    /// applied.
    Conflict(MergeConflict),
    /// `Get`+`Merge` on a child that has no reference snapshot.
    NoSnapshot,
    /// `Start` on a child that has no program installed.
    NoProgram,
    /// Installing a program over a live (resumable) child.
    ChildActive,
    /// The space was destroyed (kernel shutdown or parent exit); the
    /// program should unwind promptly.
    Destroyed,
    /// A device operation from a non-root space (§3.1: only the root
    /// has I/O privileges).
    NotRoot,
    /// The child number's node field names an unreachable node.
    NodeUnreachable(u16),
    /// Malformed request.
    InvalidSpec(&'static str),
    /// Replay mode: the execution requested a different input sequence
    /// than the log contains.
    ReplayDivergence(&'static str),
    /// The kernel was killed by an injected fault (see
    /// [`FaultPlan`](crate::FaultPlan)); in-flight syscalls unwind with
    /// this error and the recorded trace prefix is the crash log.
    Killed,
    /// An injected fault failed this operation (device write, trace
    /// append, allocation, …) without killing the kernel; the payload
    /// names the injection site.
    FaultInjected(&'static str),
    /// A checkpoint failed its integrity digest — the bytes were
    /// corrupted since capture and must not be restored.
    CheckpointCorrupt {
        /// Digest recorded in the checkpoint header.
        expected: u64,
        /// Digest recomputed over the payload.
        actual: u64,
    },
    /// A checkpoint was written by an incompatible format version.
    CheckpointVersion {
        /// Version recorded in the checkpoint header.
        found: u32,
        /// Version this kernel writes and restores.
        supported: u32,
    },
    /// A checkpoint could not be decoded or restored (truncated or
    /// structurally invalid payload).
    CheckpointMalformed(&'static str),
}

impl From<MemError> for KernelError {
    fn from(e: MemError) -> KernelError {
        KernelError::Mem(e)
    }
}

impl KernelError {
    /// Maps an error escaping a native program to the trap its space
    /// reports to the parent.
    pub fn as_trap(&self) -> TrapKind {
        match self {
            KernelError::Mem(e) => TrapKind::Mem(*e),
            KernelError::Conflict(c) => TrapKind::Conflict(c.addr),
            KernelError::NoSnapshot => TrapKind::Fault("merge without snapshot"),
            KernelError::NoProgram => TrapKind::Fault("start without program"),
            KernelError::ChildActive => TrapKind::Fault("program install on live child"),
            KernelError::Destroyed => TrapKind::Fault("space destroyed"),
            KernelError::NotRoot => TrapKind::Fault("device access from non-root space"),
            KernelError::NodeUnreachable(_) => TrapKind::Fault("unreachable node"),
            KernelError::InvalidSpec(s) => TrapKind::Fault(s),
            KernelError::ReplayDivergence(s) => TrapKind::Fault(s),
            KernelError::Killed => TrapKind::Fault("kernel killed by injected fault"),
            KernelError::FaultInjected(site) => TrapKind::Fault(site),
            KernelError::CheckpointCorrupt { .. } => TrapKind::Fault("checkpoint corrupt"),
            KernelError::CheckpointVersion { .. } => TrapKind::Fault("checkpoint version"),
            KernelError::CheckpointMalformed(s) => TrapKind::Fault(s),
        }
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Mem(e) => write!(f, "memory error: {e}"),
            KernelError::Conflict(c) => write!(
                f,
                "merge conflict at {:#x} (base {}, child {}, parent {})",
                c.addr, c.base, c.child, c.parent
            ),
            KernelError::NoSnapshot => write!(f, "merge requires a prior snapshot"),
            KernelError::NoProgram => write!(f, "child has no program to start"),
            KernelError::ChildActive => write!(f, "child is live; cannot replace program"),
            KernelError::Destroyed => write!(f, "space destroyed"),
            KernelError::NotRoot => {
                write!(f, "device access requires root I/O privileges")
            }
            KernelError::NodeUnreachable(n) => write!(f, "node {n} unreachable"),
            KernelError::InvalidSpec(s) => write!(f, "invalid request: {s}"),
            KernelError::ReplayDivergence(s) => write!(f, "replay divergence: {s}"),
            KernelError::Killed => write!(f, "kernel killed by injected fault"),
            KernelError::FaultInjected(site) => write!(f, "injected fault: {site}"),
            KernelError::CheckpointCorrupt { expected, actual } => write!(
                f,
                "checkpoint integrity digest mismatch: header {expected:016x}, payload {actual:016x}"
            ),
            KernelError::CheckpointVersion { found, supported } => write!(
                f,
                "checkpoint format v{found} not restorable by this kernel (supports v{supported})"
            ),
            KernelError::CheckpointMalformed(s) => write!(f, "malformed checkpoint: {s}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Result alias for kernel operations.
pub type Result<T> = std::result::Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_trap_conversion() {
        assert_eq!(TrapKind::from(VmTrap::DivideByZero), TrapKind::DivideByZero);
        assert_eq!(
            TrapKind::from(VmTrap::Mem(MemError::Unmapped { addr: 4 })),
            TrapKind::Mem(MemError::Unmapped { addr: 4 })
        );
    }

    #[test]
    fn error_to_trap_mapping() {
        let e = KernelError::Mem(MemError::Unmapped { addr: 8 });
        assert_eq!(e.as_trap(), TrapKind::Mem(MemError::Unmapped { addr: 8 }));
        let c = MergeConflict {
            addr: 0x10,
            base: 0,
            child: 1,
            parent: 2,
        };
        assert_eq!(KernelError::Conflict(c).as_trap(), TrapKind::Conflict(0x10));
    }

    #[test]
    fn displays() {
        assert!(KernelError::NoSnapshot.to_string().contains("snapshot"));
        assert!(TrapKind::Panic.to_string().contains("panicked"));
    }
}
