//! Space identifiers and the child-number namespace.

/// Kernel-internal identifier of a space slot.
///
/// Applications never see these: per the paper's race-free namespace
/// principle (§2.4), user code names *its own children* with
/// application-chosen [`ChildNum`]s; `SpaceId` is only an index into
/// the kernel's space table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpaceId(pub(crate) u32);

impl SpaceId {
    /// The root space's id.
    pub const ROOT: SpaceId = SpaceId(0);

    /// Returns the raw index (for diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An application-chosen child number, private to each space.
///
/// The high 16 bits form the *node number* field used for cluster
/// distribution (§3.3): node field `0` means the calling space's home
/// node, and `k ≥ 1` means cluster node `k - 1`. The low 48 bits are
/// the per-node child index.
pub type ChildNum = u64;

/// Bit position of the node-number field inside a [`ChildNum`].
pub const NODE_SHIFT: u32 = 48;

/// Builds a child number addressing child `idx` on absolute cluster
/// node `node`.
///
/// # Examples
///
/// ```
/// use det_kernel::{child_on_node, node_field, child_index};
/// let c = child_on_node(3, 7);
/// assert_eq!(node_field(c), 4); // Absolute node 3 = field value 4.
/// assert_eq!(child_index(c), 7);
/// ```
pub fn child_on_node(node: u16, idx: u64) -> ChildNum {
    debug_assert!(idx < (1 << NODE_SHIFT));
    (((node as u64) + 1) << NODE_SHIFT) | idx
}

/// Extracts the raw node field (0 = home node, `k` = node `k - 1`).
pub fn node_field(child: ChildNum) -> u16 {
    (child >> NODE_SHIFT) as u16
}

/// Extracts the per-node child index.
pub fn child_index(child: ChildNum) -> u64 {
    child & ((1u64 << NODE_SHIFT) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_field_roundtrip() {
        let c = child_on_node(0, 42);
        assert_eq!(node_field(c), 1);
        assert_eq!(child_index(c), 42);
        let c = child_on_node(31, 5);
        assert_eq!(node_field(c), 32);
        assert_eq!(child_index(c), 5);
    }

    #[test]
    fn plain_children_have_zero_node_field() {
        assert_eq!(node_field(7), 0);
        assert_eq!(child_index(7), 7);
    }
}
