//! The capability handle through which a space's program acts.
//!
//! A [`SpaceCtx`] is the *entire* interface between user code and the
//! world: private registers and memory, the three system calls, a
//! virtual-time charge meter, and (for the root space only) device
//! access. This is the enforcement boundary of §3.1 — native programs
//! hold no other handles, and VM programs cannot even express anything
//! else.

use std::sync::Arc;

use det_memory::{AddressSpace, Region};
use det_vm::Regs;

use crate::cost::{ns_to_ps, ps_to_ns};
use crate::device::DeviceId;
use crate::error::{KernelError, Result};
use crate::ids::{ChildNum, SpaceId, child_index, node_field};
use crate::kernel::{RunState, Shared, Slot, SpaceState};
use crate::syscall::{GetResult, GetSpec, PutResult, PutSpec, StopReason};

/// Execution context of a running space.
pub struct SpaceCtx {
    shared: Arc<Shared>,
    id: SpaceId,
    st: Option<Box<SpaceState>>,
    destroyed: bool,
}

impl SpaceCtx {
    pub(crate) fn new(shared: Arc<Shared>, id: SpaceId, st: Box<SpaceState>) -> SpaceCtx {
        SpaceCtx {
            shared,
            id,
            st: Some(st),
            destroyed: false,
        }
    }

    pub(crate) fn into_state(self) -> Option<Box<SpaceState>> {
        self.st
    }

    fn st(&self) -> &SpaceState {
        self.st
            .as_deref()
            .expect("space state absent: the space was destroyed; programs must return after a Destroyed error")
    }

    fn st_mut(&mut self) -> &mut SpaceState {
        self.st
            .as_deref_mut()
            .expect("space state absent: the space was destroyed; programs must return after a Destroyed error")
    }

    /// This space's private memory.
    pub fn mem(&self) -> &AddressSpace {
        &self.st().mem
    }

    /// This space's private memory, mutably.
    pub fn mem_mut(&mut self) -> &mut AddressSpace {
        &mut self.st_mut().mem
    }

    /// This space's registers.
    pub fn regs(&self) -> &Regs {
        &self.st().regs
    }

    /// This space's registers, mutably.
    pub fn regs_mut(&mut self) -> &mut Regs {
        &mut self.st_mut().regs
    }

    /// The space's virtual clock, in nanoseconds.
    pub fn vclock_ns(&self) -> u64 {
        ps_to_ns(self.st().vclock_ps)
    }

    /// The node this space currently executes on.
    pub fn cur_node(&self) -> u16 {
        self.st().cur_node
    }

    /// The node this space was created on.
    pub fn home_node(&self) -> u16 {
        self.st().home_node
    }

    /// True if this is the root space (I/O privileges).
    pub fn is_root(&self) -> bool {
        self.id == SpaceId::ROOT
    }

    /// Declares `ns` nanoseconds of compute work on the virtual clock.
    ///
    /// Native workloads call this with calibrated per-operation costs;
    /// VM programs are charged automatically per instruction. If the
    /// space runs under a work limit and this charge exhausts it, the
    /// space is preempted here: control returns to the parent, and the
    /// call completes when the parent restarts the space (the paper's
    /// instruction-limit preemption, §3.2).
    pub fn charge(&mut self, ns: u64) -> Result<()> {
        self.charge_ps(ns_to_ps(ns))
    }

    pub(crate) fn charge_ps(&mut self, ps: u64) -> Result<()> {
        if self.destroyed {
            return Err(KernelError::Destroyed);
        }
        if self.id != SpaceId::ROOT
            && self
                .shared
                .shutdown
                .load(std::sync::atomic::Ordering::Relaxed)
        {
            self.destroyed = true;
            return Err(KernelError::Destroyed);
        }
        let st = self.st_mut();
        st.vclock_ps = st.vclock_ps.saturating_add(ps);
        if let Some(limit) = st.limit_ps {
            if ps >= limit {
                st.limit_ps = None;
                return self.park(StopReason::LimitReached);
            }
            st.limit_ps = Some(limit - ps);
        }
        Ok(())
    }

    /// Parks this space with `reason` and blocks until the parent
    /// restarts it.
    fn park(&mut self, reason: StopReason) -> Result<()> {
        let st = self.st.take().expect("parking requires live state");
        match self.shared.park(self.id, st, reason) {
            Ok(st) => {
                self.st = Some(st);
                Ok(())
            }
            Err(e) => {
                self.destroyed = true;
                Err(e)
            }
        }
    }

    /// Invokes the cluster rendezvous hook on a stopped child,
    /// charging demand-paging costs to this caller.
    fn rendezvous_hook(
        &mut self,
        g: &mut parking_lot::MutexGuard<'_, crate::kernel::KState>,
        child_id: SpaceId,
    ) {
        if let Some(hooks) = self.shared.cluster.as_ref() {
            let parent_node = self.st().cur_node;
            let child_st = g.slots[child_id.0 as usize]
                .state
                .as_mut()
                .expect("idle child has state");
            let ps =
                hooks.on_rendezvous(child_id, child_st.cur_node, parent_node, &mut child_st.mem);
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(ps);
        }
    }

    /// Resolves the node a child number addresses and migrates there.
    fn route(&mut self, child: ChildNum) -> Result<()> {
        let field = node_field(child);
        let target = if field == 0 {
            self.st().home_node
        } else {
            field - 1
        };
        if target != self.st().cur_node {
            let id = self.id;
            let shared = Arc::clone(&self.shared);
            shared.migrate(id, self.st_mut(), target)?;
        }
        Ok(())
    }

    /// The `Put` system call: copy state into a child (creating it on
    /// first reference) and optionally start it (§3.2, Tables 1–2).
    ///
    /// Blocks while the child is running — spaces synchronize only at
    /// well-defined rendezvous points.
    pub fn put(&mut self, child: ChildNum, spec: PutSpec) -> Result<PutResult> {
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.route(child)?;
        let shared = Arc::clone(&self.shared);
        let mut g = shared.state.lock();
        g.stats.puts += 1;
        let child_id = ensure_child(&mut g, self.id, child, self.st().cur_node);
        let was = shared.wait_idle(&mut g, child_id)?;

        // Rendezvous clock rule: the caller observes the child's stop.
        let child_v = g.slots[child_id.0 as usize]
            .state
            .as_ref()
            .expect("idle child has state")
            .vclock_ps;
        {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.max(child_v);
        }
        self.rendezvous_hook(&mut g, child_id);

        if let Some(r) = spec.regs {
            g.slots[child_id.0 as usize]
                .state
                .as_mut()
                .expect("idle")
                .regs = r;
        }
        let installed_program = spec.program.is_some();
        if let Some(p) = spec.program {
            let slot = &mut g.slots[child_id.0 as usize];
            match was {
                StopReason::Unstarted => {}
                StopReason::Halted | StopReason::Trap(_) if slot.thread.is_some() => {
                    // The old program finished; reap its thread so a
                    // fresh one can be spawned (child-slot reuse).
                    let h = slot.thread.take().expect("checked");
                    let _ = h.join();
                }
                StopReason::Halted | StopReason::Trap(_) => {}
                _ => return Err(KernelError::ChildActive),
            }
            slot.pending = Some(p);
            slot.run = RunState::Idle(StopReason::Unstarted);
        }
        let mut charge_after = 0u64;
        if let Some(c) = spec.copy {
            let src_mem = &self.st().mem;
            let child_slot = &mut g.slots[child_id.0 as usize];
            let child_st = child_slot.state.as_mut().expect("idle");
            let cs = child_st.mem.copy_from_counted(src_mem, c.src, c.dst)?;
            // Structural clone: whole leaves are shared in O(1) and
            // charged per leaf; only range-boundary pages pay the
            // per-page COW mapping cost.
            g.stats.pages_copied += cs.pages;
            g.stats.leaves_cloned += cs.leaves_shared;
            charge_after += self.shared.costs.copy_cost_ps(&cs);
            if let Some(hooks) = self.shared.cluster.as_ref() {
                hooks.on_copy(self.id, child_id, c.src.start >> 12, c.dst >> 12, cs.pages);
            }
        }
        if let Some(r) = spec.zero {
            let child_st = g.slots[child_id.0 as usize].state.as_mut().expect("idle");
            child_st.mem.map_zero(r, det_memory::Perm::RW)?;
            let pages = r.page_count();
            g.stats.pages_copied += pages;
            charge_after += self.shared.costs.map_cost_ps(pages);
        }
        if let Some((r, p)) = spec.perm {
            let child_st = g.slots[child_id.0 as usize].state.as_mut().expect("idle");
            child_st.mem.set_perm(r, p)?;
        }
        if let Some(src_child) = spec.tree_from {
            copy_tree(&mut g, self.id, src_child, child_id)?;
        }
        if spec.snap {
            let child_st = g.slots[child_id.0 as usize].state.as_mut().expect("idle");
            child_st.snap = Some(child_st.mem.snapshot());
            // A snapshot clones only the root spine: charged per
            // page-table leaf, not per mapped page (the O(touched)
            // fork cost of PAPER.md §8).
            let leaves = child_st.mem.leaf_count() as u64;
            g.stats.pages_snapped += child_st.mem.page_count() as u64;
            g.stats.leaves_cloned += leaves;
            charge_after += self.shared.costs.clone_cost_ps(leaves);
        }
        // Kernel work is charged to the caller; limits may preempt
        // only at the *next* kernel entry (we hold the child idle now).
        {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(charge_after);
        }
        if let Some(start) = spec.start {
            // Fresh program dispatch is a spawn (thread creation);
            // waking a parked space is a cheap resume.
            let fresh = installed_program || was == StopReason::Unstarted;
            let start_ps = if fresh {
                self.shared.costs.spawn_ps
            } else {
                self.shared.costs.resume_ps
            };
            let st_v = {
                let st = self.st_mut();
                st.vclock_ps = st.vclock_ps.saturating_add(start_ps);
                st.vclock_ps
            };
            shared.start_child(&mut g, child_id, start.limit_ns, st_v, was)?;
        }
        Ok(PutResult { child_was: was })
    }

    /// The `Get` system call: synchronize with a child and copy or
    /// merge state out of it (§3.2, Tables 1–2).
    ///
    /// With `merge`, bytes the child changed since its snapshot are
    /// folded into this space; concurrent changes to the same byte
    /// raise [`KernelError::Conflict`] and leave this space untouched.
    pub fn get(&mut self, child: ChildNum, spec: GetSpec) -> Result<GetResult> {
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.route(child)?;
        let shared = Arc::clone(&self.shared);
        let mut g = shared.state.lock();
        g.stats.gets += 1;
        let child_id = ensure_child(&mut g, self.id, child, self.st().cur_node);
        let stop = shared.wait_idle(&mut g, child_id)?;

        let (child_v, code) = {
            let st = g.slots[child_id.0 as usize].state.as_ref().expect("idle");
            (st.vclock_ps, st.regs.gpr[1])
        };
        {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.max(child_v);
        }
        self.rendezvous_hook(&mut g, child_id);

        let regs = if spec.regs {
            Some(
                g.slots[child_id.0 as usize]
                    .state
                    .as_ref()
                    .expect("idle")
                    .regs,
            )
        } else {
            None
        };
        let mut charge_after = 0u64;
        if let Some(c) = spec.copy {
            // Copy child → parent: take the child's state out briefly
            // so both sides can be borrowed.
            let child_st = g.slots[child_id.0 as usize]
                .state
                .take()
                .expect("idle child has state");
            let res = self
                .st_mut()
                .mem
                .copy_from_counted(&child_st.mem, c.src, c.dst);
            g.slots[child_id.0 as usize].state = Some(child_st);
            let cs = res?;
            g.stats.pages_copied += cs.pages;
            g.stats.leaves_cloned += cs.leaves_shared;
            charge_after += self.shared.costs.copy_cost_ps(&cs);
            if let Some(hooks) = self.shared.cluster.as_ref() {
                hooks.on_copy(child_id, self.id, c.src.start >> 12, c.dst >> 12, cs.pages);
            }
        }
        let mut merge_stats = None;
        if let Some(region) = spec.merge {
            let child_st = g.slots[child_id.0 as usize]
                .state
                .take()
                .expect("idle child has state");
            let snap = match child_st.snap.as_ref() {
                Some(s) => s,
                None => {
                    g.slots[child_id.0 as usize].state = Some(child_st);
                    return Err(KernelError::NoSnapshot);
                }
            };
            let policy = spec.merge_policy.unwrap_or(self.shared.policy);
            let merged = self
                .st_mut()
                .mem
                .try_merge_from(&child_st.mem, snap, region, policy);
            g.slots[child_id.0 as usize].state = Some(child_st);
            let (stats, conflict) = merged?;
            charge_after += self.shared.costs.merge_cost_ps(&stats);
            g.stats.record_merge(&stats);
            if let Some(c) = conflict {
                g.stats.conflicts += 1;
                let st = self.st_mut();
                st.vclock_ps = st.vclock_ps.saturating_add(charge_after);
                return Err(KernelError::Conflict(c));
            }
            merge_stats = Some(stats);
        }
        if let Some(r) = spec.zero {
            let child_st = g.slots[child_id.0 as usize].state.as_mut().expect("idle");
            child_st.mem.map_zero(r, det_memory::Perm::RW)?;
            charge_after += self.shared.costs.map_cost_ps(r.page_count());
        }
        if let Some((r, p)) = spec.perm {
            let child_st = g.slots[child_id.0 as usize].state.as_mut().expect("idle");
            child_st.mem.set_perm(r, p)?;
        }
        {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(charge_after);
        }
        Ok(GetResult {
            stop,
            code,
            regs,
            merge: merge_stats,
            child_vclock_ns: ps_to_ns(child_v),
        })
    }

    /// The `Ret` system call: stop and wait for the parent (§3.2).
    ///
    /// `code` is placed in `r1` (the exit-status convention read by
    /// `Get`). Returns when the parent restarts this space. Before
    /// stopping, the space migrates back to its home node (§3.3).
    pub fn ret(&mut self, code: u64) -> Result<()> {
        if self.id == SpaceId::ROOT {
            return Err(KernelError::InvalidSpec("root space cannot ret"));
        }
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.st_mut().regs.gpr[1] = code;
        let home = self.st().home_node;
        if self.st().cur_node != home {
            let id = self.id;
            let shared = Arc::clone(&self.shared);
            shared.migrate(id, self.st_mut(), home)?;
        }
        self.park(StopReason::Ret)
    }

    /// Reads the next input event from a device (root only; §3.1).
    ///
    /// `None` means the device has no input available. In record mode
    /// the consumed event is logged; in replay mode it comes from the
    /// log.
    pub fn dev_read(&mut self, dev: DeviceId) -> Result<Option<Vec<u8>>> {
        if self.id != SpaceId::ROOT {
            return Err(KernelError::NotRoot);
        }
        self.charge_ps(self.shared.costs.syscall_ps)?;
        let shared = Arc::clone(&self.shared);
        let mut g = shared.state.lock();
        g.stats.device_reads += 1;
        g.devices.read(dev)
    }

    /// Writes output bytes to a device (root only).
    pub fn dev_write(&mut self, dev: DeviceId, data: &[u8]) -> Result<()> {
        if self.id != SpaceId::ROOT {
            return Err(KernelError::NotRoot);
        }
        self.charge_ps(self.shared.costs.syscall_ps)?;
        let shared = Arc::clone(&self.shared);
        let mut g = shared.state.lock();
        g.stats.device_write_bytes += data.len() as u64;
        g.devices.write(dev, data);
        Ok(())
    }
}

/// Finds or creates the slot for `child` under `parent`.
fn ensure_child(
    g: &mut parking_lot::MutexGuard<'_, crate::kernel::KState>,
    parent: SpaceId,
    child: ChildNum,
    node: u16,
) -> SpaceId {
    let key = child_index(child) | ((node_field(child) as u64) << crate::ids::NODE_SHIFT);
    if let Some(&id) = g.slots[parent.0 as usize].children.get(&key) {
        return id;
    }
    let id = SpaceId(g.slots.len() as u32);
    g.slots.push(Slot::new_child(node));
    g.slots[parent.0 as usize].children.insert(key, id);
    g.stats.spaces_created += 1;
    id
}

/// Deep-copies the state of `src_child` (and recursively its
/// descendants) into `dst` — the `Tree` option.
fn copy_tree(
    g: &mut parking_lot::MutexGuard<'_, crate::kernel::KState>,
    parent: SpaceId,
    src_child: ChildNum,
    dst: SpaceId,
) -> Result<()> {
    let &src_id = g.slots[parent.0 as usize]
        .children
        .get(&src_child)
        .ok_or(KernelError::InvalidSpec("tree source child does not exist"))?;
    if src_id == dst {
        return Err(KernelError::InvalidSpec("tree source equals destination"));
    }
    clone_into(g, src_id, dst)
}

fn clone_into(
    g: &mut parking_lot::MutexGuard<'_, crate::kernel::KState>,
    src: SpaceId,
    dst: SpaceId,
) -> Result<()> {
    let (img, kids) = {
        let slot = &g.slots[src.0 as usize];
        let st = slot.state.as_ref().ok_or(KernelError::ChildActive)?;
        (st.clone_image(), slot.children.clone())
    };
    {
        let slot = &mut g.slots[dst.0 as usize];
        slot.state = Some(Box::new(img));
        slot.run = RunState::Idle(StopReason::Unstarted);
    }
    for (num, kid_src) in kids {
        // Create a matching child under dst and recurse.
        let kid_dst = {
            let id = SpaceId(g.slots.len() as u32);
            let node = g.slots[kid_src.0 as usize]
                .state
                .as_ref()
                .map(|s| s.home_node)
                .unwrap_or(0);
            g.slots.push(Slot::new_child(node));
            g.slots[dst.0 as usize].children.insert(num, id);
            g.stats.spaces_created += 1;
            id
        };
        clone_into(g, kid_src, kid_dst)?;
    }
    Ok(())
}

/// Region helper: the whole 48-bit user address range, for coarse
/// whole-space operations in tests and the runtime.
pub fn full_user_region() -> Region {
    Region::new(0, 1u64 << 47)
}
