//! The capability handle through which a space's program acts.
//!
//! A [`SpaceCtx`] is the *entire* interface between user code and the
//! world: private registers and memory, the system calls, a
//! virtual-time charge meter, and (for the root space only) device
//! access. This is the enforcement boundary of §3.1 — native programs
//! hold no other handles, and VM programs cannot even express anything
//! else.
//!
//! Rendezvous syscalls resolve their child through the space's own
//! children map, which stores each child's slot cell alongside its id
//! ([`crate::kernel::ChildRef`]) — one uncontended lock of the
//! caller's own slot, never a walk of the kernel-global space table
//! (DESIGN.md §6).

use std::sync::Arc;

use parking_lot::MutexGuard;

use det_memory::{AddressSpace, Region};
use det_vm::Regs;

use crate::apply::InstallAction;
use crate::apply::{
    EntryRec, MemOpCounts, PutRec, TraceEvent, VmCounters, charge, copy_op, install_action,
    merge_op, perm_op, snap_op, start_charge_ps, zero_op,
};
use crate::cost::{ns_to_ps, ps_to_ns};
use crate::device::DeviceId;
use crate::error::{KernelError, Result, TrapKind};
use crate::fault::{FaultAction, FaultSite};
use crate::ids::{ChildNum, SpaceId, node_field};
use crate::kernel::{ChildRef, RunState, Shared, Slot, SlotCell, SpaceState, TraceCtx};
use crate::state::{child_path, observe_stop};
use crate::syscall::{GetResult, GetSpec, PutResult, PutSpec, StopReason};

use std::sync::atomic::Ordering::Relaxed;

/// Execution context of a running space.
pub struct SpaceCtx {
    shared: Arc<Shared>,
    id: SpaceId,
    /// This space's own slot cell.
    cell: Arc<SlotCell>,
    st: Option<Box<SpaceState>>,
    /// Trace cursor when recording: resynced at the end of every
    /// traced syscall and after every park-resume.
    trace: Option<TraceCtx>,
    destroyed: bool,
    /// Syscalls entered by this space (counted at the fault gate, i.e.
    /// including faulted entries) — a deterministic per-space ordinal
    /// used as a fault-injection coordinate.
    syscalls: u64,
    /// Lineage path, fetched lazily from the slot and cached (the path
    /// never changes after creation).
    path: Option<String>,
}

impl SpaceCtx {
    pub(crate) fn new(
        shared: Arc<Shared>,
        id: SpaceId,
        cell: Arc<SlotCell>,
        st: Box<SpaceState>,
    ) -> SpaceCtx {
        let trace = shared.trace.as_ref().map(|_| TraceCtx::new(&st));
        SpaceCtx {
            shared,
            id,
            cell,
            st: Some(st),
            trace,
            destroyed: false,
            syscalls: 0,
            path: None,
        }
    }

    /// Deterministic fault gate, probed at every syscall prologue
    /// *before* any charge, routing, or trace record — a faulted entry
    /// leaves no trace-visible effect, so faulted runs replay.
    ///
    /// `sites` lists the injection sites the syscall exposes, probed in
    /// order; the [`FaultSite::TraceSink`] site is probed only when the
    /// kernel records a trace.
    fn fault_gate(&mut self, sites: &[FaultSite]) -> Result<()> {
        let nth = self.syscalls;
        self.syscalls += 1;
        if self.shared.faults.is_empty() {
            return Ok(());
        }
        let vclock_ps = self.st.as_deref().map_or(0, |s| s.vclock_ps);
        if self.path.is_none() {
            self.path = Some(self.cell.m.lock().path.clone());
        }
        let path = self.path.as_deref().expect("cached above");
        let recording = self.trace.is_some();
        for &site in sites {
            if site == FaultSite::TraceSink && !recording {
                continue;
            }
            match self.shared.faults.probe(site, path, nth, vclock_ps) {
                None => {}
                Some(FaultAction::KillKernel) => {
                    // Publish shutdown so every space observes the
                    // crash at its next kernel entry; the triggering
                    // space unwinds with the typed kill error (for the
                    // root, that ends the run — the trace recorded so
                    // far is the crash log).
                    self.shared
                        .shutdown
                        .store(true, std::sync::atomic::Ordering::SeqCst);
                    return Err(KernelError::Killed);
                }
                Some(FaultAction::PanicVehicle) => {
                    // Deterministic panic: the vehicle's existing
                    // catch_unwind converts it into a terminal
                    // `Trap(Panic)` check-in.
                    panic!("injected vehicle panic");
                }
                Some(FaultAction::FailOp) => {
                    return Err(KernelError::FaultInjected(site.label()));
                }
            }
        }
        Ok(())
    }

    pub(crate) fn into_state(self) -> Option<Box<SpaceState>> {
        self.st
    }

    /// Splits the context into its final state and its trace cursor
    /// (for the vehicle's final check-in event).
    pub(crate) fn into_parts(self) -> (Option<Box<SpaceState>>, Option<TraceCtx>) {
        (self.st, self.trace)
    }

    /// The caller-side syscall-entry record: everything that happened
    /// to this space since the last sync point. `None` when not
    /// recording.
    fn trace_entry(&self) -> Option<EntryRec> {
        let tr = self.trace.as_ref()?;
        Some(tr.entry(self.st.as_deref()?))
    }

    /// Re-bases the trace cursor on the space's current image, ending
    /// the recorded syscall (its effects are re-derived by replay, not
    /// carried by the next delta).
    fn trace_resync(&mut self) {
        if let (Some(tr), Some(st)) = (self.trace.as_mut(), self.st.as_deref()) {
            tr.resync(st);
        }
    }

    /// Records the root program's exit (called by `Kernel::run` before
    /// the state is taken for shutdown).
    pub(crate) fn record_exit(&mut self, exit: std::result::Result<i32, TrapKind>) {
        if let (Some(entry), Some(st)) = (self.trace_entry(), self.st.as_deref()) {
            self.shared.trace_push(Some(TraceEvent::RootExit {
                entry,
                regs: st.regs,
                exit,
            }));
        }
    }

    /// True if the *kernel* destroyed this space (shutdown teardown or
    /// a park raced by destruction) — as opposed to the program merely
    /// returning a fabricated `Destroyed` error.
    pub(crate) fn destroyed_by_kernel(&self) -> bool {
        self.destroyed
    }

    fn st(&self) -> &SpaceState {
        self.st
            .as_deref()
            .expect("space state absent: the space was destroyed; programs must return after a Destroyed error")
    }

    fn st_mut(&mut self) -> &mut SpaceState {
        self.st
            .as_deref_mut()
            .expect("space state absent: the space was destroyed; programs must return after a Destroyed error")
    }

    /// This space's private memory.
    pub fn mem(&self) -> &AddressSpace {
        &self.st().mem
    }

    /// This space's private memory, mutably.
    pub fn mem_mut(&mut self) -> &mut AddressSpace {
        &mut self.st_mut().mem
    }

    /// This space's registers.
    pub fn regs(&self) -> &Regs {
        &self.st().regs
    }

    /// This space's registers, mutably.
    pub fn regs_mut(&mut self) -> &mut Regs {
        &mut self.st_mut().regs
    }

    /// The space's virtual clock, in nanoseconds.
    pub fn vclock_ns(&self) -> u64 {
        ps_to_ns(self.st().vclock_ps)
    }

    /// The space's virtual clock, in picoseconds — the exact value the
    /// rendezvous max-rule propagates. Shard runtimes compare and sync
    /// clocks at this precision so a remote join is bit-identical to a
    /// local one.
    pub fn vclock_ps(&self) -> u64 {
        self.st().vclock_ps
    }

    /// Rendezvous-style clock sync: advances this space's virtual
    /// clock to `max(current, target_ps)` — the `parent = max(parent,
    /// child)` rule of DESIGN.md §1, applied to a child that ran on
    /// another kernel shard. Charging through the normal path means a
    /// work limit can preempt here exactly as it would on a local
    /// charge.
    pub fn sync_vclock_ps(&mut self, target_ps: u64) -> Result<()> {
        let cur = self.st().vclock_ps;
        if target_ps > cur {
            self.charge_ps(target_ps - cur)
        } else {
            Ok(())
        }
    }

    /// Records a cross-shard space migration driven by an external
    /// shard runtime: counts it in [`crate::KernelStats::migrations`]
    /// and charges `ps` (the link cost of the migration summary
    /// message) to this space's clock.
    pub fn note_migration(&mut self, ps: u64) -> Result<()> {
        self.shared.hot.migrations.fetch_add(1, Relaxed);
        self.charge_ps(ps)
    }

    /// Merges a migrated child's returned memory into this space —
    /// the `Get`+merge rendezvous of §3.2, for a child that ran on a
    /// remote kernel shard and came home as a dirty delta.
    ///
    /// `child` is the child's final memory (its materialized image
    /// plus the returned delta) and `snap` the image it started from;
    /// the three-way merge, conflict detection, virtual-time charge,
    /// and statistics are identical to the local merge path, which is
    /// what keeps a cluster run's artifact bundle invariant over how
    /// spaces were placed on shards.
    pub fn merge_remote(
        &mut self,
        child: &AddressSpace,
        snap: &AddressSpace,
        region: Region,
    ) -> Result<det_memory::MergeStats> {
        let costs = self.shared.costs;
        let policy = self.shared.policy;
        let (stats, conflict) = self
            .st_mut()
            .mem
            .try_merge_from(child, snap, region, policy)?;
        let ps = costs.merge_cost_ps(&stats);
        // The caller pays for the scan on success and on conflict
        // alike, mirroring the local merge path.
        {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(ps);
        }
        self.shared.record_merge(&stats);
        if let Some(c) = conflict {
            self.shared.hot.conflicts.fetch_add(1, Relaxed);
            return Err(KernelError::Conflict(c));
        }
        Ok(stats)
    }

    /// The node this space currently executes on.
    pub fn cur_node(&self) -> u16 {
        self.st().cur_node
    }

    /// The node this space was created on.
    pub fn home_node(&self) -> u16 {
        self.st().home_node
    }

    /// True if this is the root space (I/O privileges).
    pub fn is_root(&self) -> bool {
        self.id == SpaceId::ROOT
    }

    /// Declares `ns` nanoseconds of compute work on the virtual clock.
    ///
    /// Native workloads call this with calibrated per-operation costs;
    /// VM programs are charged automatically per instruction. If the
    /// space runs under a work limit and this charge exhausts it, the
    /// space is preempted here: control returns to the parent, and the
    /// call completes when the parent restarts the space (the paper's
    /// instruction-limit preemption, §3.2).
    pub fn charge(&mut self, ns: u64) -> Result<()> {
        self.charge_ps(ns_to_ps(ns))
    }

    /// Declares `ps` picoseconds of work on the virtual clock — the
    /// picosecond-precision form of [`charge`](SpaceCtx::charge), used
    /// by shard runtimes and cost models whose charges are computed in
    /// the clock's native unit. Same preemption semantics as `charge`.
    pub fn charge_ps(&mut self, ps: u64) -> Result<()> {
        if self.destroyed {
            return Err(KernelError::Destroyed);
        }
        if self.id != SpaceId::ROOT
            && self
                .shared
                .shutdown
                .load(std::sync::atomic::Ordering::Relaxed)
        {
            self.destroyed = true;
            return Err(KernelError::Destroyed);
        }
        if charge(self.st_mut(), ps) {
            return self.park(StopReason::LimitReached);
        }
        Ok(())
    }

    /// Parks this space with `reason` and blocks until the parent
    /// restarts it.
    fn park(&mut self, reason: StopReason) -> Result<()> {
        let st = self.st.take().expect("parking requires live state");
        let ev = self
            .trace
            .as_ref()
            .map(|tr| tr.check_in(self.id, &st, reason, false, VmCounters::default()));
        let cell = Arc::clone(&self.cell);
        match self.shared.park(&cell, st, reason, ev) {
            Ok(st) => {
                self.st = Some(st);
                self.trace_resync();
                Ok(())
            }
            Err(e) => {
                self.destroyed = true;
                Err(e)
            }
        }
    }

    /// Invokes the cluster rendezvous hook on a stopped child,
    /// charging demand-paging costs to this caller.
    fn rendezvous_hook(&mut self, g: &mut MutexGuard<'_, Slot>, child_id: SpaceId) {
        if let Some(hooks) = self.shared.cluster.as_ref() {
            let parent_node = self.st().cur_node;
            let child_st = g.state.as_mut().expect("idle child has state");
            let ps =
                hooks.on_rendezvous(child_id, child_st.cur_node, parent_node, &mut child_st.mem);
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(ps);
        }
    }

    /// Resolves the node a child number addresses and migrates there.
    fn route(&mut self, child: ChildNum) -> Result<()> {
        let field = node_field(child);
        let target = if field == 0 {
            self.st().home_node
        } else {
            field - 1
        };
        if target != self.st().cur_node {
            let id = self.id;
            let shared = Arc::clone(&self.shared);
            shared.migrate(id, self.st_mut(), target)?;
        }
        Ok(())
    }

    /// Finds or creates the slot for `child` under this space.
    ///
    /// The children map is read under this space's own (uncontended)
    /// slot lock, so a `Tree` copy that rewrites the map while this
    /// space is parked is authoritative the moment it resumes. The
    /// global table lock is taken only on first creation, and never
    /// while a slot lock is held.
    fn ensure_child(&mut self, child: ChildNum) -> ChildRef {
        if let Some((id, cell)) = self.cell.m.lock().children.get(&child) {
            return (*id, Arc::clone(cell));
        }
        // Only this space's own thread creates its children, and a
        // parent can only Tree-rewrite the map while this space is
        // parked — so the miss above cannot race an insert.
        let node = self.st().cur_node;
        let path = {
            let mut g = self.cell.m.lock();
            let parent = g.path.clone();
            child_path(&parent, child, &mut g.child_gens)
        };
        let (id, cell) = self.shared.new_slot(node, path);
        self.cell
            .m
            .lock()
            .children
            .insert(child, (id, Arc::clone(&cell)));
        (id, cell)
    }

    /// Looks a child up without creating it.
    fn lookup_child(&mut self, child: ChildNum) -> Option<ChildRef> {
        self.cell
            .m
            .lock()
            .children
            .get(&child)
            .map(|(id, cell)| (*id, Arc::clone(cell)))
    }

    /// Rendezvous clock rule: the caller observes the child's stop and
    /// takes the later of the two clocks. Returns the child's clock.
    fn sync_clocks(&mut self, g: &mut MutexGuard<'_, Slot>) -> u64 {
        let child_v = g.state.as_ref().expect("idle child has state").vclock_ps;
        observe_stop(self.st_mut(), child_v)
    }

    /// Applies the `Put` options (everything but `Start`) to a stopped
    /// child whose slot guard the caller holds. Returns the guard
    /// (released and re-acquired around `Tree` copies) and whether a
    /// program was installed.
    fn apply_put_options<'a>(
        &mut self,
        cell: &'a Arc<SlotCell>,
        g: MutexGuard<'a, Slot>,
        child_id: SpaceId,
        spec: PutSpec,
        was: StopReason,
        tree_ids: &mut Vec<u32>,
    ) -> Result<(MutexGuard<'a, Slot>, bool)> {
        let costs = self.shared.costs;
        let installed_program = spec.program.is_some();
        let mut counts = MemOpCounts::default();
        // Option application is the pure core's (`copy_op` etc. are
        // exactly what replay runs); this block only wires the core
        // fns to the locked slot and the host-side vehicle reaping.
        // On error the accumulated counts still fold into the hot
        // stats below — each op's work happened.
        let out: Result<MutexGuard<'a, Slot>> = 'opts: {
            let mut g = g;
            if let Some(r) = spec.regs {
                g.state.as_mut().expect("idle").regs = r;
            }
            if let Some(p) = spec.program {
                match install_action(was, g.terminal) {
                    Ok(InstallAction::Fresh) => {}
                    Ok(InstallAction::Replace) => {
                        if let Some(h) = g.thread.take() {
                            // The old program finished; reap its vehicle
                            // so a fresh one can start (child-slot reuse).
                            let _ = h.join();
                        }
                        // A fresh program gets a fresh CPU identity.
                        g.cpu = None;
                        g.inline_vm = false;
                    }
                    Err(e) => break 'opts Err(e),
                }
                g.terminal = false;
                g.pending = Some(p);
                g.run = RunState::Idle(StopReason::Unstarted);
            }
            if let Some(c) = spec.copy {
                let src = self.st.as_deref().expect("caller state present");
                let child_st = g.state.as_mut().expect("idle");
                match copy_op(&costs, src, child_st, c, &mut counts) {
                    Ok(pages) => {
                        if let Some(hooks) = self.shared.cluster.as_ref() {
                            hooks.on_copy(self.id, child_id, c.src.start >> 12, c.dst >> 12, pages);
                        }
                    }
                    Err(e) => break 'opts Err(e),
                }
            }
            if let Some(r) = spec.zero {
                let child_st = g.state.as_mut().expect("idle");
                if let Err(e) = zero_op(&costs, child_st, r, true, &mut counts) {
                    break 'opts Err(e);
                }
            }
            if let Some((r, p)) = spec.perm {
                let child_st = g.state.as_mut().expect("idle");
                if let Err(e) = perm_op(child_st, r, p) {
                    break 'opts Err(e);
                }
            }
            if let Some(src_child) = spec.tree_from {
                let (src_id, src_cell) = match self.lookup_child(src_child) {
                    Some(r) => r,
                    None => {
                        break 'opts Err(KernelError::InvalidSpec(
                            "tree source child does not exist",
                        ));
                    }
                };
                if src_id == child_id {
                    break 'opts Err(KernelError::InvalidSpec("tree source equals destination"));
                }
                // A tree copy walks other slots; release this child's lock
                // so slot locks are only ever taken one at a time.
                drop(g);
                if let Err(e) = clone_into(&self.shared, &src_cell, cell, tree_ids) {
                    break 'opts Err(e);
                }
                g = cell.m.lock();
                if matches!(g.run, RunState::Destroyed) {
                    break 'opts Err(KernelError::Destroyed);
                }
            }
            if spec.snap {
                let child_st = g.state.as_mut().expect("idle");
                snap_op(&costs, child_st, &mut counts);
            }
            Ok(g)
        };
        self.shared
            .hot
            .pages_copied
            .fetch_add(counts.pages_copied, Relaxed);
        self.shared
            .hot
            .pages_snapped
            .fetch_add(counts.pages_snapped, Relaxed);
        self.shared
            .hot
            .leaves_cloned
            .fetch_add(counts.leaves_cloned, Relaxed);
        let g = out?;
        // Kernel work is charged to the caller; limits may preempt
        // only at the *next* kernel entry (we hold the child idle now).
        {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(counts.charge_ps);
        }
        Ok((g, installed_program))
    }

    /// Applies `Start`, charging spawn or resume cost to the caller.
    fn apply_start(
        &mut self,
        g: &mut MutexGuard<'_, Slot>,
        cell: &Arc<SlotCell>,
        child_id: SpaceId,
        limit_ns: Option<u64>,
        installed_program: bool,
        was: StopReason,
    ) -> Result<()> {
        // Fresh program dispatch is a spawn (vehicle creation);
        // waking a parked space is a cheap resume.
        let start_ps = start_charge_ps(&self.shared.costs, installed_program, was);
        let st_v = {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(start_ps);
            st.vclock_ps
        };
        self.shared
            .start_child(g, cell, child_id, limit_ns, st_v, was)
    }

    /// Applies the `Get` options to a stopped child whose slot guard
    /// the caller holds.
    fn apply_get_options(
        &mut self,
        g: &mut MutexGuard<'_, Slot>,
        child_id: SpaceId,
        spec: &GetSpec,
        stop: StopReason,
        child_v: u64,
    ) -> Result<GetResult> {
        let code = g.state.as_ref().expect("idle").regs.gpr[1];
        let regs = if spec.regs {
            Some(g.state.as_ref().expect("idle").regs)
        } else {
            None
        };
        let costs = self.shared.costs;
        let mut counts = MemOpCounts::default();
        let mut merge_stats = None;
        let mut conflicted = false;
        // Pure-core ops again; the child's state box is taken out
        // around each two-sided op so both spaces can be borrowed.
        let out: Result<()> = 'opts: {
            if let Some(c) = spec.copy {
                let child_st = g.state.take().expect("idle child has state");
                let res = copy_op(&costs, &child_st, self.st_mut(), c, &mut counts);
                g.state = Some(child_st);
                match res {
                    Ok(pages) => {
                        if let Some(hooks) = self.shared.cluster.as_ref() {
                            hooks.on_copy(child_id, self.id, c.src.start >> 12, c.dst >> 12, pages);
                        }
                    }
                    Err(e) => break 'opts Err(e),
                }
            }
            if let Some(region) = spec.merge {
                let child_st = g.state.take().expect("idle child has state");
                let res = merge_op(
                    &costs,
                    self.shared.policy,
                    self.st_mut(),
                    &child_st,
                    region,
                    spec.merge_policy,
                    &mut counts,
                );
                g.state = Some(child_st);
                match res {
                    Err(e) => break 'opts Err(e),
                    Ok((stats, conflict)) => {
                        self.shared.record_merge(&stats);
                        if let Some(c) = conflict {
                            conflicted = true;
                            break 'opts Err(KernelError::Conflict(c));
                        }
                        merge_stats = Some(stats);
                    }
                }
            }
            if let Some(r) = spec.zero {
                let child_st = g.state.as_mut().expect("idle");
                if let Err(e) = zero_op(&costs, child_st, r, false, &mut counts) {
                    break 'opts Err(e);
                }
            }
            if let Some((r, p)) = spec.perm {
                let child_st = g.state.as_mut().expect("idle");
                if let Err(e) = perm_op(child_st, r, p) {
                    break 'opts Err(e);
                }
            }
            Ok(())
        };
        self.shared
            .hot
            .pages_copied
            .fetch_add(counts.pages_copied, Relaxed);
        self.shared
            .hot
            .leaves_cloned
            .fetch_add(counts.leaves_cloned, Relaxed);
        if conflicted {
            self.shared.hot.conflicts.fetch_add(1, Relaxed);
        }
        // The caller pays for the work on success — and on a conflict
        // (the merge scan happened; the caller observed its result).
        if out.is_ok() || conflicted {
            let st = self.st_mut();
            st.vclock_ps = st.vclock_ps.saturating_add(counts.charge_ps);
        }
        out?;
        Ok(GetResult {
            stop,
            code,
            regs,
            merge: merge_stats,
            child_vclock_ns: ps_to_ns(child_v),
        })
    }

    /// The `Put` system call: copy state into a child (creating it on
    /// first reference) and optionally start it (§3.2, Tables 1–2).
    ///
    /// Blocks while the child is running — spaces synchronize only at
    /// well-defined rendezvous points.
    pub fn put(&mut self, child: ChildNum, spec: PutSpec) -> Result<PutResult> {
        self.fault_gate(&[FaultSite::Syscall, FaultSite::Alloc, FaultSite::TraceSink])?;
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.route(child)?;
        let entry = self.trace_entry();
        let rec = entry.as_ref().map(|_| PutRec::of(&spec));
        self.shared.hot.puts.fetch_add(1, Relaxed);
        let (child_id, cell) = self.ensure_child(child);
        let shared = Arc::clone(&self.shared);
        let g = cell.m.lock();
        let (mut g, was) = shared.wait_idle(&cell, child_id, g)?;
        self.sync_clocks(&mut g);
        self.rendezvous_hook(&mut g, child_id);
        let start = spec.start;
        let mut tree_ids = Vec::new();
        // The Put event is recorded whether the options succeed or
        // fail — replay re-derives the same recorded error from the
        // same state (and, like the live path, swallows it).
        let caller = self.id.index();
        let put_event = move |tree_ids: Vec<u32>| {
            entry.zip(rec).map(|(entry, put)| TraceEvent::Put {
                caller,
                child,
                child_id: child_id.index(),
                fused: false,
                entry,
                put,
                tree_new_ids: tree_ids,
            })
        };
        let res = match self.apply_put_options(&cell, g, child_id, spec, was, &mut tree_ids) {
            Ok((mut g, installed_program)) => {
                let started = match start {
                    Some(s) => self.apply_start(
                        &mut g,
                        &cell,
                        child_id,
                        s.limit_ns,
                        installed_program,
                        was,
                    ),
                    None => Ok(()),
                };
                // Pushed while the child's guard is held: linearized
                // against the started child's own first check-in.
                self.shared.trace_push(put_event(tree_ids));
                drop(g);
                self.trace_resync();
                started.map(|()| PutResult { child_was: was })
            }
            Err(e) => {
                // Guard already released; safe — the child is stopped
                // and cannot emit events until this caller restarts it.
                self.shared.trace_push(put_event(tree_ids));
                self.trace_resync();
                Err(e)
            }
        };
        res
    }

    /// The `Get` system call: synchronize with a child and copy or
    /// merge state out of it (§3.2, Tables 1–2).
    ///
    /// With `merge`, bytes the child changed since its snapshot are
    /// folded into this space; concurrent changes to the same byte
    /// raise [`KernelError::Conflict`] and leave this space untouched.
    pub fn get(&mut self, child: ChildNum, spec: GetSpec) -> Result<GetResult> {
        self.fault_gate(&[FaultSite::Syscall, FaultSite::TraceSink])?;
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.route(child)?;
        let entry = self.trace_entry();
        self.shared.hot.gets.fetch_add(1, Relaxed);
        let (child_id, cell) = self.ensure_child(child);
        let shared = Arc::clone(&self.shared);
        let g = cell.m.lock();
        let (mut g, stop) = shared.wait_idle(&cell, child_id, g)?;
        let child_v = self.sync_clocks(&mut g);
        self.rendezvous_hook(&mut g, child_id);
        let res = self.apply_get_options(&mut g, child_id, &spec, stop, child_v);
        // Recorded on success and failure alike (replay re-derives the
        // same error), while the child's guard is held.
        if let Some(entry) = entry {
            self.shared.trace_push(Some(TraceEvent::Get {
                caller: self.id.index(),
                child,
                child_id: child_id.index(),
                fused: false,
                entry: Some(entry),
                get: spec,
            }));
        }
        drop(g);
        self.trace_resync();
        res
    }

    /// The fused `PutGet` exchange: applies `put` to the child at its
    /// current stop, starts it, blocks for its *next* stop, and
    /// collects it with `get` — the runtime's dominant resume→collect
    /// pattern (fs-image staging in `wait`, quantum driving) as one
    /// kernel entry instead of two, with a single blocking wait.
    ///
    /// `put.start` is required (without it there would be no next stop
    /// to collect). The returned [`GetResult`] describes the stop the
    /// child reached *after* the restart.
    pub fn put_get(&mut self, child: ChildNum, put: PutSpec, get: GetSpec) -> Result<GetResult> {
        if put.start.is_none() {
            return Err(KernelError::InvalidSpec(
                "put_get requires the Start option",
            ));
        }
        self.fault_gate(&[FaultSite::Syscall, FaultSite::Alloc, FaultSite::TraceSink])?;
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.route(child)?;
        let entry = self.trace_entry();
        let rec = entry.as_ref().map(|_| PutRec::of(&put));
        self.shared.hot.put_gets.fetch_add(1, Relaxed);
        let (child_id, cell) = self.ensure_child(child);
        let shared = Arc::clone(&self.shared);
        let g = cell.m.lock();
        // First rendezvous: the stop the Put applies to.
        let (mut g, was) = shared.wait_idle(&cell, child_id, g)?;
        self.sync_clocks(&mut g);
        self.rendezvous_hook(&mut g, child_id);
        let start = put.start;
        let caller = self.id.index();
        let mut tree_ids = Vec::new();
        let put_event = move |tree_ids: Vec<u32>| {
            entry.zip(rec).map(|(entry, put)| TraceEvent::Put {
                caller,
                child,
                child_id: child_id.index(),
                fused: true,
                entry,
                put,
                tree_new_ids: tree_ids,
            })
        };
        let g = match self.apply_put_options(&cell, g, child_id, put, was, &mut tree_ids) {
            Ok((mut g, installed_program)) => {
                let s = start.expect("checked above");
                let started =
                    self.apply_start(&mut g, &cell, child_id, s.limit_ns, installed_program, was);
                // Pushed before the second wait drives the child, so
                // the child's next check-in follows it in the trace.
                self.shared.trace_push(put_event(tree_ids));
                if let Err(e) = started {
                    drop(g);
                    self.trace_resync();
                    return Err(e);
                }
                g
            }
            Err(e) => {
                self.shared.trace_push(put_event(tree_ids));
                self.trace_resync();
                return Err(e);
            }
        };
        // Second rendezvous: the child's next stop (for an inline VM
        // child this executes it right here, lock-step, with no
        // condvar traffic at all).
        let (mut g, stop) = shared.wait_idle(&cell, child_id, g)?;
        let child_v = self.sync_clocks(&mut g);
        self.rendezvous_hook(&mut g, child_id);
        let res = self.apply_get_options(&mut g, child_id, &get, stop, child_v);
        if self.trace.is_some() {
            self.shared.trace_push(Some(TraceEvent::Get {
                caller,
                child,
                child_id: child_id.index(),
                fused: true,
                entry: None,
                get,
            }));
        }
        drop(g);
        self.trace_resync();
        res
    }

    /// The `Ret` system call: stop and wait for the parent (§3.2).
    ///
    /// `code` is placed in `r1` (the exit-status convention read by
    /// `Get`). Returns when the parent restarts this space. Before
    /// stopping, the space migrates back to its home node (§3.3).
    pub fn ret(&mut self, code: u64) -> Result<()> {
        if self.id == SpaceId::ROOT {
            return Err(KernelError::InvalidSpec("root space cannot ret"));
        }
        self.fault_gate(&[FaultSite::Syscall, FaultSite::TraceSink])?;
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.st_mut().regs.gpr[1] = code;
        let home = self.st().home_node;
        if self.st().cur_node != home {
            let id = self.id;
            let shared = Arc::clone(&self.shared);
            shared.migrate(id, self.st_mut(), home)?;
        }
        self.park(StopReason::Ret)
    }

    /// Reads the next input event from a device (root only; §3.1).
    ///
    /// `None` means the device has no input available. In record mode
    /// the consumed event is logged; in replay mode it comes from the
    /// log.
    pub fn dev_read(&mut self, dev: DeviceId) -> Result<Option<Vec<u8>>> {
        if self.id != SpaceId::ROOT {
            return Err(KernelError::NotRoot);
        }
        self.fault_gate(&[FaultSite::Syscall, FaultSite::Device, FaultSite::TraceSink])?;
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.shared.hot.device_reads.fetch_add(1, Relaxed);
        let res = self.shared.devices.lock().read(dev);
        if let Some(entry) = self.trace_entry() {
            self.shared.trace_push(Some(TraceEvent::DevRead {
                entry,
                dev,
                data: res.as_ref().ok().and_then(|d| d.clone()),
            }));
            self.trace_resync();
        }
        res
    }

    /// Writes output bytes to a device (root only).
    pub fn dev_write(&mut self, dev: DeviceId, data: &[u8]) -> Result<()> {
        if self.id != SpaceId::ROOT {
            return Err(KernelError::NotRoot);
        }
        self.fault_gate(&[FaultSite::Syscall, FaultSite::Device, FaultSite::TraceSink])?;
        self.charge_ps(self.shared.costs.syscall_ps)?;
        self.shared
            .hot
            .device_write_bytes
            .fetch_add(data.len() as u64, Relaxed);
        self.shared.devices.lock().write(dev, data);
        if let Some(entry) = self.trace_entry() {
            self.shared.trace_push(Some(TraceEvent::DevWrite {
                entry,
                dev,
                data: data.to_vec(),
            }));
            self.trace_resync();
        }
        Ok(())
    }

    /// The `Checkpoint` mark (root only): declares a durable snapshot
    /// point and charges its deterministic cost — syscall entry plus a
    /// per-dirty-leaf increment (the kernel-side work a real
    /// incremental checkpoint would do is proportional to the dirty
    /// page-table leaves, exactly the unit `delta_since` walks).
    ///
    /// The mark carries no payload: the checkpoint *bundle* is captured
    /// from the recorded trace (see [`crate::Checkpoint`]), which keeps
    /// the bundle byte-stable across dispatch modes. Returns the
    /// dirty-leaf count the charge was based on.
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.id != SpaceId::ROOT {
            return Err(KernelError::NotRoot);
        }
        self.fault_gate(&[FaultSite::Syscall, FaultSite::TraceSink])?;
        let leaves = self.st().mem.dirty_leaf_count() as u64;
        // One fused charge, applied *before* the entry record is cut,
        // so the leaf-proportional cost rides in `entry.advance_ps` and
        // replay reproduces the identical clock without re-deriving it.
        let ps = self
            .shared
            .costs
            .syscall_ps
            .saturating_add(self.shared.costs.checkpoint_cost_ps(leaves));
        self.charge_ps(ps)?;
        self.shared.hot.checkpoints.fetch_add(1, Relaxed);
        self.shared.hot.checkpoint_leaves.fetch_add(leaves, Relaxed);
        if let Some(entry) = self.trace_entry() {
            self.shared
                .trace_push(Some(TraceEvent::Checkpoint { entry, leaves }));
            self.trace_resync();
        }
        Ok(leaves)
    }

    /// Statically analyzes the VM program image at `[base, base+len)`
    /// in this space's memory and returns its sound page footprint
    /// (DESIGN.md §11).
    ///
    /// The footprint is a pure, deterministic function of the image
    /// bytes, so no trace event is needed: replay recomputes nothing
    /// and the charge below rides in the next cut entry's
    /// `advance_ps` like any other compute charge. The cost is the
    /// syscall constant plus `analyze_step_ps` per abstract transfer
    /// step — the analyzer's own deterministic work measure — so
    /// asking for a prefetch hint has a dispatch-invariant price.
    pub fn analyze_footprint(&mut self, base: u64, len: u64) -> Result<det_analyze::Footprint> {
        let regs = det_vm::Regs {
            pc: base,
            ..Default::default()
        };
        self.analyze_footprint_from(base, len, &regs)
    }

    /// Like [`SpaceCtx::analyze_footprint`], but seeds the abstract
    /// interpreter with the concrete entry registers in `regs` (entry
    /// pc = `regs.pc`). Resolving data pointers the caller passes in
    /// registers — a per-node slot base, say — turns an otherwise
    /// unbounded footprint into the tight per-job page set that
    /// cluster leaf-pull migration wants as a prefetch hint.
    pub fn analyze_footprint_from(
        &mut self,
        base: u64,
        len: u64,
        regs: &det_vm::Regs,
    ) -> Result<det_analyze::Footprint> {
        self.fault_gate(&[FaultSite::Syscall])?;
        let mut image = vec![
            0u8;
            usize::try_from(len).map_err(|_| KernelError::InvalidSpec(
                "analysis image length overflows"
            ))?
        ];
        self.st().mem.read(base, &mut image)?;
        let init = std::array::from_fn(|i| det_analyze::Val::exact_u64(regs.gpr[i]));
        let analysis = det_analyze::analyze_with_regs(
            &[det_analyze::Segment {
                base,
                bytes: &image,
            }],
            regs.pc,
            &init,
            &det_analyze::AnalyzeConfig::default(),
        );
        let ps = self
            .shared
            .costs
            .syscall_ps
            .saturating_add(self.shared.costs.analyze_cost_ps(analysis.footprint.steps));
        self.charge_ps(ps)?;
        Ok(analysis.footprint)
    }
}

/// Deep-copies the state of `src` (and recursively its descendants)
/// into `dst` — the `Tree` option. Slot locks are taken one at a time
/// (clone the image out of the source, then install it), so the walk
/// can never deadlock against concurrent rendezvous; the children
/// maps carry each child's cell, so the walk never touches the global
/// space table except to append fresh slots.
fn clone_into(
    shared: &Arc<Shared>,
    src: &SlotCell,
    dst: &Arc<SlotCell>,
    new_ids: &mut Vec<u32>,
) -> Result<()> {
    let (img, kids) = {
        let g = src.m.lock();
        let st = g.state.as_ref().ok_or(KernelError::ChildActive)?;
        (st.clone_image(), g.children.clone())
    };
    {
        let mut g = dst.m.lock();
        if matches!(g.run, RunState::Destroyed) {
            return Err(KernelError::Destroyed);
        }
        g.state = Some(Box::new(img));
        g.run = RunState::Idle(StopReason::Unstarted);
    }
    for (num, (_, kid_src)) in kids {
        // Create a matching child under dst and recurse. The created
        // ids are recorded in pre-order — even on an error part-way —
        // so trace replay can mint the identical tree.
        let node = kid_src
            .m
            .lock()
            .state
            .as_ref()
            .map(|s| s.home_node)
            .unwrap_or(0);
        let path = {
            let mut g = dst.m.lock();
            let parent = g.path.clone();
            child_path(&parent, num, &mut g.child_gens)
        };
        let (kid_id, kid_dst) = shared.new_slot(node, path);
        new_ids.push(kid_id.index());
        dst.m
            .lock()
            .children
            .insert(num, (kid_id, Arc::clone(&kid_dst)));
        clone_into(shared, &kid_src, &kid_dst, new_ids)?;
    }
    Ok(())
}

/// Region helper: the whole 48-bit user address range, for coarse
/// whole-space operations in tests and the runtime.
pub fn full_user_region() -> Region {
    Region::new(0, 1u64 << 47)
}
