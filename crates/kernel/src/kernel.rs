//! The kernel proper: space table, rendezvous, execution vehicles.
//!
//! Spaces interact *only* through `Put`/`Get`/`Ret` (§3.2). The
//! implementation keeps every stopped space's state (registers +
//! private address space) in the kernel's space table; when a space
//! runs, its state is checked out to an execution vehicle, making it
//! physically inaccessible to every other space. `Put`/`Get` on a
//! running child blocks until the child checks its state back in via
//! `Ret`, a trap, or a limit preemption — the "rendezvous" semantics
//! that make the space hierarchy a deterministic Kahn network.
//!
//! Rendezvous is a **targeted-wakeup engine** (DESIGN.md §6): each
//! slot owns its own lock and a pair of condition variables, and every
//! park, check-in, and resume wakes exactly the one thread known to be
//! waiting (the slot's parent in `wait_idle`, or the slot's own parked
//! vehicle) — never a broadcast. Leaf VM spaces go further: they are
//! executed *inline* on the thread that waits for them, so their
//! rendezvous costs no host context switch at all.
//!
//! Host threads are *execution vehicles only*: all cross-space
//! communication is kernel-mediated, so results are independent of how
//! the host schedules (or lends) the vehicles — tests assert this
//! empirically, including equality between inline and threaded VM
//! dispatch.

use std::collections::BTreeMap;
use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex, MutexGuard};

use det_memory::{AddressSpace, ConflictPolicy, MergeStats};
use det_vm::{Cpu, VmExit};

use crate::apply::{EntryRec, StartAction, TraceEvent, VmCounters, stamp_start, start_action};
use crate::cost::{CostModel, ps_to_ns};
use crate::ctx::SpaceCtx;
use crate::device::{DeviceHub, DeviceId, IoLog, IoMode};
use crate::error::{KernelError, Result, TrapKind};
use crate::fault::{ArmedFaults, FaultPlan};
use crate::ids::SpaceId;
use crate::program::{NativeEntry, NativeResult, Program};
use crate::state::{ROOT_PATH, StopCounter, check_in_charge, final_reason, stop_counter};
use crate::stats::{HostStats, KernelStats};
use crate::syscall::StopReason;
use crate::trace::{SpaceArtifact, TraceMeta, TraceSink};

/// Cross-node migration callbacks, implemented by `det-cluster`.
///
/// The kernel core knows only that a space has a *current node* and a
/// *home node*; when a syscall names a child on another node, the
/// caller migrates there first (§3.3). The hook owns per-node page
/// residency and the network cost model, and returns the virtual
/// picoseconds the leg costs.
pub trait ClusterHooks: Send + Sync {
    /// Number of nodes; node fields must be below this.
    fn node_count(&self) -> u16;

    /// Called when `space` moves from node `from` to node `to` with
    /// its memory image `mem`. Returns picoseconds to charge.
    fn on_migrate(&self, space: SpaceId, from: u16, to: u16, mem: &mut AddressSpace) -> u64;

    /// Called at every parent↔child rendezvous (`Put`/`Get` after the
    /// child stops): the hook may harvest the stopped child's page
    /// accesses for demand-paging accounting. `parent_node` is where
    /// the caller currently executes. Returns picoseconds to charge to
    /// the caller.
    fn on_rendezvous(
        &self,
        child: SpaceId,
        child_node: u16,
        parent_node: u16,
        child_mem: &mut AddressSpace,
    ) -> u64 {
        let _ = (child, child_node, parent_node, child_mem);
        0
    }

    /// Called when pages are virtually copied between spaces (both
    /// `Put`+Copy and `Get`+Copy): destination pages share the
    /// sources' frames, so they inherit the sources' node residency.
    /// `src_start_vpn`/`dst_start_vpn` describe the aligned window.
    fn on_copy(
        &self,
        src: SpaceId,
        dst: SpaceId,
        src_start_vpn: u64,
        dst_start_vpn: u64,
        pages: u64,
    ) {
        let _ = (src, dst, src_start_vpn, dst_start_vpn, pages);
    }
}

pub use crate::state::VmDispatch;

/// Kernel construction parameters.
///
/// Construct via [`KernelConfig::builder`] (the struct is
/// `#[non_exhaustive]`, so literal construction only works inside this
/// crate); `KernelConfig::default()` remains the zero-config path.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct KernelConfig {
    /// Virtual-time cost model.
    pub costs: CostModel,
    /// Merge conflict policy (paper default: strict).
    pub policy: ConflictPolicy,
    /// Record or replay nondeterministic inputs.
    pub io: IoMode,
    /// Execution-vehicle policy for VM spaces.
    pub vm_dispatch: VmDispatch,
    /// When set, the kernel records every syscall-level transition into
    /// this sink; the resulting [`crate::Trace`] replays without any
    /// execution vehicles. Incompatible with cluster hooks.
    pub trace: Option<TraceSink>,
    /// Deterministic fault-injection plan (empty by default). Faults
    /// fire at deterministic coordinates and surface as typed errors —
    /// see [`FaultPlan`].
    pub faults: FaultPlan,
}

impl KernelConfig {
    /// Starts a typed builder over the default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use det_kernel::{KernelConfig, VmDispatch};
    /// let cfg = KernelConfig::builder()
    ///     .vm_dispatch(VmDispatch::Threaded)
    ///     .build();
    /// assert_eq!(cfg.vm_dispatch, VmDispatch::Threaded);
    /// ```
    pub fn builder() -> KernelConfigBuilder {
        KernelConfigBuilder {
            config: KernelConfig::default(),
        }
    }
}

/// Builder for [`KernelConfig`] — the only way to construct a
/// non-default configuration from outside this crate.
#[derive(Debug, Default)]
pub struct KernelConfigBuilder {
    config: KernelConfig,
}

impl KernelConfigBuilder {
    /// Sets the virtual-time cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.config.costs = costs;
        self
    }

    /// Sets the merge conflict policy.
    pub fn policy(mut self, policy: ConflictPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the nondeterministic-input mode (record or replay).
    pub fn io(mut self, io: IoMode) -> Self {
        self.config.io = io;
        self
    }

    /// Sets the execution-vehicle policy for VM spaces.
    pub fn vm_dispatch(mut self, vm_dispatch: VmDispatch) -> Self {
        self.config.vm_dispatch = vm_dispatch;
        self
    }

    /// Attaches a trace sink recording every kernel transition.
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.config.trace = Some(sink);
        self
    }

    /// Arms a deterministic fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> KernelConfig {
        self.config
    }
}

pub(crate) use crate::state::{RunState, SpaceState};

/// Trace-recording cursor for one space: the sink plus the *base*
/// image the next event's [`EntryRec`] delta is computed against.
///
/// The base is re-cloned ("resynced") at the end of every traced
/// syscall and at every park-resume, so snapshots and parent-side
/// mutations applied to a parked space are never straddled by a
/// delta — `delta_since` requires that (a snapshot clears the dirty
/// set), and replay re-applies parent-side mutations itself via the
/// recorded `Put`/`Get` events.
pub(crate) struct TraceCtx {
    base: AddressSpace,
    sync_ps: u64,
    sync_insn: u64,
}

impl TraceCtx {
    pub(crate) fn new(st: &SpaceState) -> TraceCtx {
        TraceCtx {
            base: st.mem.clone(),
            sync_ps: st.vclock_ps,
            sync_insn: st.insn_count,
        }
    }

    pub(crate) fn resync(&mut self, st: &SpaceState) {
        self.base = st.mem.clone();
        self.sync_ps = st.vclock_ps;
        self.sync_insn = st.insn_count;
    }

    /// The caller-side record of a syscall entry: everything that
    /// happened to this space since the last sync point.
    pub(crate) fn entry(&self, st: &SpaceState) -> EntryRec {
        EntryRec {
            advance_ps: st.vclock_ps - self.sync_ps,
            limit_ps: st.limit_ps,
            delta: st.mem.delta_since(&self.base),
        }
    }

    /// A check-in event for this space, built *before* the check-in
    /// charge is applied (replay re-applies that charge itself).
    pub(crate) fn check_in(
        &self,
        id: SpaceId,
        st: &SpaceState,
        reason: StopReason,
        final_stop: bool,
        vm: VmCounters,
    ) -> TraceEvent {
        TraceEvent::CheckIn {
            space: id.index(),
            reason,
            final_stop,
            lost_state: false,
            regs: st.regs,
            advance_ps: st.vclock_ps - self.sync_ps,
            limit_ps: st.limit_ps,
            insn_delta: st.insn_count - self.sync_insn,
            vm,
            delta: st.mem.delta_since(&self.base),
        }
    }
}

/// The check-in event for a vehicle that died without state: replay
/// synthesizes a fresh state and a terminal trap, mirroring
/// [`Shared::final_check_in`].
pub(crate) fn lost_state_check_in(id: SpaceId, reason: StopReason) -> TraceEvent {
    TraceEvent::CheckIn {
        space: id.index(),
        reason,
        final_stop: true,
        lost_state: true,
        regs: det_vm::Regs::default(),
        advance_ps: 0,
        limit_ps: None,
        insn_delta: 0,
        vm: VmCounters::default(),
        delta: det_memory::SpaceDelta::default(),
    }
}

/// A resolved child: its table id plus its slot cell, stored together
/// in the parent's children map so rendezvous resolution is one
/// (uncontended) lock of the parent's own slot — never a walk of the
/// kernel-global space table — and `Tree` copies that rewrite the map
/// are authoritative immediately.
pub(crate) type ChildRef = (SpaceId, Arc<SlotCell>);

pub(crate) struct Slot {
    pub children: BTreeMap<u64, ChildRef>,
    /// Deterministic lineage path (see [`crate::state::child_path`]):
    /// table ids are allocation-order artifacts that race under
    /// concurrent creation, so artifacts and reports name spaces by
    /// path. Assigned at creation under the parent's slot lock,
    /// identically to the replay mirror.
    pub path: String,
    /// Per-child-number creation counter for the path generation
    /// suffix (only `Tree` copies ever rebind a number).
    pub child_gens: BTreeMap<u64, u32>,
    pub run: RunState,
    pub state: Option<Box<SpaceState>>,
    pub pending: Option<Program>,
    pub thread: Option<JoinHandle<()>>,
    /// Warm CPU (software TLB + decoded-instruction cache) of an
    /// inline VM space, preserved across stops and resumes.
    pub cpu: Option<Box<Cpu>>,
    /// True once the slot runs its program as an inline VM space.
    pub inline_vm: bool,
    /// Trace cursor for an inline VM slot, established whenever the
    /// slot becomes `Runnable` (its vehicle-less equivalent of the
    /// thread-local cursor a dedicated vehicle carries). Taken by the
    /// thread that drives the slot.
    pub trace_base: Option<TraceCtx>,
    /// Set by a *final* check-in: the slot's vehicle has exited (or is
    /// about to), so a resumable-looking stop (e.g. a native trap) has
    /// nothing left to resume. Cleared when a new program is
    /// installed. Prevents a `Start` from waking nobody and hanging
    /// the next `wait_idle` forever.
    pub terminal: bool,
}

impl Slot {
    pub(crate) fn new_child(node: u16, path: String) -> Slot {
        Slot {
            children: BTreeMap::new(),
            path,
            child_gens: BTreeMap::new(),
            run: RunState::Idle(StopReason::Unstarted),
            state: Some(Box::new(SpaceState::new(node))),
            pending: None,
            thread: None,
            cpu: None,
            inline_vm: false,
            trace_base: None,
            terminal: false,
        }
    }
}

/// One space's slot: its own lock plus the two targeted wait points.
///
/// At most one thread ever waits on each condvar — the slot's unique
/// parent in [`Shared::wait_idle`] on `idle_cv`, and the slot's own
/// parked vehicle in [`Shared::park`] on `resume_cv` — so every
/// `notify_one` wakes exactly the intended thread and nobody else.
pub(crate) struct SlotCell {
    pub m: Mutex<Slot>,
    /// Wakes the parent blocked in `wait_idle` on this slot.
    pub idle_cv: Condvar,
    /// Wakes this slot's parked vehicle when the parent restarts it.
    pub resume_cv: Condvar,
}

impl SlotCell {
    fn new(slot: Slot) -> Arc<SlotCell> {
        Arc::new(SlotCell {
            m: Mutex::new(slot),
            idle_cv: Condvar::new(),
            resume_cv: Condvar::new(),
        })
    }
}

/// Accumulated merge statistics (cold path; merges do real byte work,
/// so a mutex here costs nothing measurable).
#[derive(Default)]
pub(crate) struct MergeAccum {
    pub merges: u64,
    pub totals: MergeStats,
}

/// Counters bumped on hot paths without taking any slot lock.
///
/// Relaxed atomics: each is an independent event count, folded into
/// [`KernelStats`] only at collection time (`Kernel::run` shutdown,
/// after every vehicle has been joined), so no ordering between them
/// is ever observed mid-run. The *values* are deterministic — they
/// count kernel-mediated events, not host scheduling — only the bump
/// itself is lock-free. (`spurious_wakeups` is the one exception —
/// wake races are host timing — which is why it folds into
/// [`HostStats`], never into [`KernelStats`].)
#[derive(Default)]
pub(crate) struct HotStats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub put_gets: AtomicU64,
    pub rets: AtomicU64,
    pub traps: AtomicU64,
    pub limit_preemptions: AtomicU64,
    pub spaces_created: AtomicU64,
    pub threads_spawned: AtomicU64,
    pub pages_copied: AtomicU64,
    pub pages_snapped: AtomicU64,
    pub leaves_cloned: AtomicU64,
    pub conflicts: AtomicU64,
    pub migrations: AtomicU64,
    pub device_reads: AtomicU64,
    pub device_write_bytes: AtomicU64,
    pub vm_instructions: AtomicU64,
    pub vm_tlb_hits: AtomicU64,
    pub vm_pages_walked: AtomicU64,
    pub vm_icache_hits: AtomicU64,
    pub vm_icache_fills: AtomicU64,
    pub condvar_wakeups: AtomicU64,
    pub spurious_wakeups: AtomicU64,
    pub vm_inline_runs: AtomicU64,
    pub checkpoints: AtomicU64,
    pub checkpoint_leaves: AtomicU64,
}

impl HotStats {
    /// Folds the hot counters into a stats record (read-time merge).
    pub(crate) fn fold_into(&self, stats: &mut KernelStats) {
        stats.puts += self.puts.load(Relaxed);
        stats.gets += self.gets.load(Relaxed);
        stats.put_gets += self.put_gets.load(Relaxed);
        stats.rets += self.rets.load(Relaxed);
        stats.traps += self.traps.load(Relaxed);
        stats.limit_preemptions += self.limit_preemptions.load(Relaxed);
        stats.spaces_created += self.spaces_created.load(Relaxed);
        stats.threads_spawned += self.threads_spawned.load(Relaxed);
        stats.pages_copied += self.pages_copied.load(Relaxed);
        stats.pages_snapped += self.pages_snapped.load(Relaxed);
        stats.leaves_cloned += self.leaves_cloned.load(Relaxed);
        stats.conflicts += self.conflicts.load(Relaxed);
        stats.migrations += self.migrations.load(Relaxed);
        stats.device_reads += self.device_reads.load(Relaxed);
        stats.device_write_bytes += self.device_write_bytes.load(Relaxed);
        stats.vm_instructions += self.vm_instructions.load(Relaxed);
        stats.vm_tlb_hits += self.vm_tlb_hits.load(Relaxed);
        stats.vm_pages_walked += self.vm_pages_walked.load(Relaxed);
        stats.vm_icache_hits += self.vm_icache_hits.load(Relaxed);
        stats.vm_icache_fills += self.vm_icache_fills.load(Relaxed);
        stats.condvar_wakeups += self.condvar_wakeups.load(Relaxed);
        stats.vm_inline_runs += self.vm_inline_runs.load(Relaxed);
        stats.checkpoints += self.checkpoints.load(Relaxed);
        stats.checkpoint_leaves += self.checkpoint_leaves.load(Relaxed);
    }

    /// The host-scheduling-dependent counters, segregated from the
    /// deterministic [`KernelStats`].
    pub(crate) fn host_stats(&self) -> HostStats {
        HostStats {
            spurious_wakeups: self.spurious_wakeups.load(Relaxed),
        }
    }
}

pub(crate) struct Shared {
    /// The space table: append-only; the lock covers growth and
    /// enumeration only. Rendezvous never touches it — each syscall
    /// resolves its child's [`SlotCell`] once and caches the `Arc`.
    pub table: Mutex<Vec<Arc<SlotCell>>>,
    /// Device hub (root-only I/O; never on the rendezvous path).
    pub devices: Mutex<DeviceHub>,
    pub costs: CostModel,
    pub policy: ConflictPolicy,
    pub cluster: Option<Arc<dyn ClusterHooks>>,
    pub vm_dispatch: VmDispatch,
    /// Lock-free hot-path counters (folded into the outcome's
    /// [`KernelStats`] at collection time).
    pub hot: HotStats,
    /// Accumulated merge statistics (cold path).
    pub merge_accum: Mutex<MergeAccum>,
    /// Transition-trace sink, when recording (never on the rendezvous
    /// fast path: checked once per syscall, not per wakeup).
    pub trace: Option<TraceSink>,
    /// Set at kernel shutdown; checked lock-free by hot paths
    /// (`charge`, the VM chunk loop) so compute-looping programs
    /// observe destruction.
    pub shutdown: AtomicBool,
    /// Armed fault-injection plan (usually empty; probed once per
    /// syscall prologue, before any charge or trace record).
    pub faults: ArmedFaults,
}

impl Shared {
    /// Resolves a slot cell by id (table lock held only for the clone).
    pub(crate) fn cell(&self, id: SpaceId) -> Arc<SlotCell> {
        Arc::clone(&self.table.lock()[id.0 as usize])
    }

    /// Appends a fresh child slot to the table. `path` is the slot's
    /// deterministic lineage path, derived by the caller under the
    /// parent's slot lock (the table id, by contrast, is an
    /// allocation-order artifact).
    pub(crate) fn new_slot(&self, node: u16, path: String) -> (SpaceId, Arc<SlotCell>) {
        let cell = SlotCell::new(Slot::new_child(node, path));
        let mut t = self.table.lock();
        let id = SpaceId(t.len() as u32);
        t.push(Arc::clone(&cell));
        drop(t);
        self.hot.spaces_created.fetch_add(1, Relaxed);
        (id, cell)
    }

    /// Records one merge's statistics.
    pub(crate) fn record_merge(&self, s: &MergeStats) {
        let mut acc = self.merge_accum.lock();
        acc.merges += 1;
        acc.totals.accumulate(s);
    }

    /// Pushes a trace event, if recording. Call sites on the
    /// rendezvous path hold the affected child's slot lock, which
    /// linearizes a parent's syscall events against that child's
    /// check-ins exactly as replay will re-derive them.
    pub(crate) fn trace_push(&self, ev: Option<TraceEvent>) {
        if let (Some(sink), Some(ev)) = (self.trace.as_ref(), ev) {
            sink.push(ev);
        }
    }

    /// Checks a stopped space's state into its (locked) slot.
    ///
    /// All rendezvous accounting funnels through here, for both
    /// threaded and inline vehicles: stats count only stops that
    /// actually materialized (a destroyed slot never reaches this
    /// point), and resumable stops are charged the park/handoff cost
    /// so virtual time is identical across dispatch modes.
    fn check_in_locked(&self, slot: &mut Slot, mut st: Box<SpaceState>, reason: StopReason) {
        match stop_counter(reason) {
            Some(StopCounter::Ret) => {
                self.hot.rets.fetch_add(1, Relaxed);
            }
            Some(StopCounter::Trap) => {
                self.hot.traps.fetch_add(1, Relaxed);
            }
            Some(StopCounter::Limit) => {
                self.hot.limit_preemptions.fetch_add(1, Relaxed);
            }
            None => {}
        }
        check_in_charge(&self.costs, &mut st, reason);
        slot.state = Some(st);
        slot.run = RunState::Idle(reason);
    }

    /// Issues one targeted wakeup (counted; see
    /// [`KernelStats::condvar_wakeups`]).
    fn notify_one(&self, cv: &Condvar) {
        self.hot.condvar_wakeups.fetch_add(1, Relaxed);
        cv.notify_one();
    }

    /// Blocks until the slot is stopped with its state checked in;
    /// returns the guard and the stop reason.
    ///
    /// If the slot is a runnable inline VM space, *this thread* (the
    /// unique waiter) executes it to its next stop — the
    /// zero-context-switch rendezvous. Otherwise it waits on the
    /// slot's `idle_cv`, to be woken by exactly one targeted notify
    /// from the slot's check-in.
    pub(crate) fn wait_idle<'a>(
        &self,
        cell: &'a SlotCell,
        id: SpaceId,
        mut g: MutexGuard<'a, Slot>,
    ) -> Result<(MutexGuard<'a, Slot>, StopReason)> {
        loop {
            match g.run {
                RunState::Idle(r) if g.state.is_some() => return Ok((g, r)),
                RunState::Destroyed => return Err(KernelError::Destroyed),
                RunState::Runnable => {
                    let mut st = g.state.take().expect("runnable slot has state");
                    let mut cpu = g.cpu.take().unwrap_or_default();
                    let tr = g.trace_base.take();
                    g.run = RunState::Running;
                    drop(g);
                    self.hot.vm_inline_runs.fetch_add(1, Relaxed);
                    let (stop, vmc) = vm_execute(self, id, &mut st, &mut cpu);
                    g = cell.m.lock();
                    match stop {
                        // Shutdown observed mid-run: the state dies
                        // with the kernel.
                        None => return Err(KernelError::Destroyed),
                        Some(reason) => {
                            if matches!(g.run, RunState::Destroyed) {
                                return Err(KernelError::Destroyed);
                            }
                            // Event built pre-charge: replay re-applies
                            // the check-in charge itself.
                            let ev = tr
                                .as_ref()
                                .map(|tr| tr.check_in(id, &st, reason, false, vmc));
                            self.check_in_locked(&mut g, st, reason);
                            g.cpu = Some(cpu);
                            self.trace_push(ev);
                            // No notify: the one waiter is this thread.
                        }
                    }
                }
                _ => {
                    cell.idle_cv.wait(&mut g);
                    if !matches!(g.run, RunState::Idle(_) | RunState::Destroyed) {
                        self.hot.spurious_wakeups.fetch_add(1, Relaxed);
                    }
                }
            }
        }
    }

    /// A running space checks its state in with `reason`, waits for
    /// its parent to restart it, and checks the state back out.
    pub(crate) fn park(
        &self,
        cell: &SlotCell,
        st: Box<SpaceState>,
        reason: StopReason,
        trace_ev: Option<TraceEvent>,
    ) -> Result<Box<SpaceState>> {
        let mut g = cell.m.lock();
        // Destroyed check *before* any accounting: a park raced by
        // destruction is a rendezvous that never happened, and must
        // not drift the replay-comparable stop counters.
        if matches!(g.run, RunState::Destroyed) {
            return Err(KernelError::Destroyed);
        }
        self.check_in_locked(&mut g, st, reason);
        self.trace_push(trace_ev);
        // Exactly one thread can be waiting for this stop: the parent
        // in `wait_idle`.
        self.notify_one(&cell.idle_cv);
        loop {
            match g.run {
                RunState::Running => {
                    if let Some(st) = g.state.take() {
                        return Ok(st);
                    }
                    cell.resume_cv.wait(&mut g);
                }
                RunState::Destroyed => return Err(KernelError::Destroyed),
                _ => {
                    cell.resume_cv.wait(&mut g);
                    if !matches!(g.run, RunState::Running | RunState::Destroyed) {
                        self.hot.spurious_wakeups.fetch_add(1, Relaxed);
                    }
                }
            }
        }
    }

    /// Final check-in of a space whose vehicle is exiting: its program
    /// finished, trapped terminally, or died without state.
    ///
    /// `st: None` (a vehicle dying without state on a live slot) is
    /// checked in as a terminal `Idle(Trap(Panic))` so a parent
    /// blocked in `wait_idle` observes a deterministic trap instead of
    /// hanging forever on a slot stuck in `Running`.
    pub(crate) fn final_check_in(
        &self,
        cell: &SlotCell,
        st: Option<Box<SpaceState>>,
        reason: StopReason,
        trace_ev: Option<TraceEvent>,
    ) {
        let mut g = cell.m.lock();
        if matches!(g.run, RunState::Destroyed) {
            return;
        }
        let reason = final_reason(st.is_some(), reason);
        let st = st.unwrap_or_else(|| Box::new(SpaceState::new(0)));
        self.check_in_locked(&mut g, st, reason);
        g.terminal = true;
        self.trace_push(trace_ev);
        self.notify_one(&cell.idle_cv);
    }

    /// Starts or resumes an idle child whose state is checked in.
    ///
    /// The caller holds the child's slot lock and has already applied
    /// the rendezvous clock rules; `parent_vclock_ps` stamps the
    /// child's resume time.
    pub(crate) fn start_child(
        self: &Arc<Self>,
        g: &mut MutexGuard<'_, Slot>,
        cell: &Arc<SlotCell>,
        child: SpaceId,
        limit_ns: Option<u64>,
        parent_vclock_ps: u64,
        prior: StopReason,
    ) -> Result<()> {
        if matches!(g.run, RunState::Destroyed)
            || self.shutdown.load(std::sync::atomic::Ordering::SeqCst)
        {
            // Refusing to dispatch under shutdown keeps the join-then-
            // collect teardown exhaustive: every vehicle that exists
            // was visible to the destroy sweep.
            return Err(KernelError::Destroyed);
        }
        stamp_start(
            g.state
                .as_mut()
                .expect("start_child requires checked-in state"),
            parent_vclock_ps,
            limit_ns,
        );
        // The *decision* is the pure core's (`start_action` is also what
        // replay runs); this shell only realizes it with host vehicles.
        let action = start_action(
            self.vm_dispatch,
            g.thread.is_some(),
            g.inline_vm,
            g.pending.as_ref().map(Program::kind),
            prior,
            g.terminal,
        )?;
        match action {
            StartAction::RunnableInline => {
                // A leaf VM space: no vehicle of its own. It runs
                // when someone waits for it.
                g.pending = None;
                g.inline_vm = true;
                g.cpu = Some(Box::default());
                g.run = RunState::Runnable;
                self.set_trace_base(g);
            }
            StartAction::Spawn(_) => {
                let program = g
                    .pending
                    .take()
                    .expect("start_action saw a pending program");
                let st = g.state.take().expect("checked above");
                g.run = RunState::Running;
                self.hot.threads_spawned.fetch_add(1, Relaxed);
                let shared = Arc::clone(self);
                let cell2 = Arc::clone(cell);
                let handle = std::thread::Builder::new()
                    .name(format!("space-{}", child.0))
                    .spawn(move || match program {
                        Program::Native(entry) => native_thread(shared, cell2, child, entry, st),
                        Program::Vm => vm_thread(shared, cell2, child, st),
                    });
                match handle {
                    Ok(h) => g.thread = Some(h),
                    Err(_) => {
                        // The host refused a vehicle (thread exhaustion
                        // or an injected allocation fault at the OS
                        // layer). The state moved into the dropped
                        // closure, so this is the lost-state shape:
                        // check the slot in as a terminal trap so the
                        // caller's next wait observes a deterministic
                        // stop instead of a slot stuck in `Running`.
                        let reason = final_reason(
                            false,
                            StopReason::Trap(TrapKind::Fault("vehicle spawn failed")),
                        );
                        let ev = self
                            .trace
                            .as_ref()
                            .map(|_| lost_state_check_in(child, reason));
                        self.check_in_locked(g, Box::new(SpaceState::new(0)), reason);
                        g.terminal = true;
                        self.trace_push(ev);
                        // No notify: the caller holds this slot's lock
                        // and is the unique observer of the stop.
                    }
                }
            }
            StartAction::ResumeInline => {
                g.run = RunState::Runnable;
                self.set_trace_base(g);
            }
            StartAction::ResumeVehicle => {
                g.run = RunState::Running;
                // Exactly one thread can be waiting for this resume:
                // the slot's own parked vehicle.
                self.notify_one(&cell.resume_cv);
            }
        }
        Ok(())
    }

    /// Establishes the trace cursor of a slot just made `Runnable`:
    /// the inline drive that eventually executes it records its
    /// check-in relative to this post-rendezvous image.
    fn set_trace_base(&self, g: &mut MutexGuard<'_, Slot>) {
        if self.trace.is_some() {
            let st = g.state.as_ref().expect("runnable slot has state");
            g.trace_base = Some(TraceCtx::new(st));
        }
    }

    /// Migrates `st` to `target` node if needed, charging the hook's
    /// cost. `Err(NodeUnreachable)` without cluster hooks.
    pub(crate) fn migrate(&self, id: SpaceId, st: &mut SpaceState, target: u16) -> Result<()> {
        if st.cur_node == target {
            return Ok(());
        }
        let hooks = self
            .cluster
            .as_ref()
            .ok_or(KernelError::NodeUnreachable(target))?;
        if target >= hooks.node_count() {
            return Err(KernelError::NodeUnreachable(target));
        }
        let cost = hooks.on_migrate(id, st.cur_node, target, &mut st.mem);
        st.vclock_ps = st.vclock_ps.saturating_add(cost);
        st.cur_node = target;
        // Hot path: a stat bump must not serialize on any lock.
        self.hot.migrations.fetch_add(1, Relaxed);
        Ok(())
    }
}

/// Outcome of a full kernel run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The root program's exit status, or the trap that ended it.
    pub exit: std::result::Result<i32, TrapKind>,
    /// The root space's final virtual clock (nanoseconds): the
    /// virtual-time makespan of the whole computation.
    pub vclock_ns: u64,
    /// Kernel operation counters. Fully deterministic: every field is
    /// a pure function of the kernel-mediated event history.
    pub stats: KernelStats,
    /// Host-scheduling-dependent counters, segregated so `stats` can
    /// be compared across runs without carve-outs.
    pub host: HostStats,
    /// Device output buffers (console, etc.), in canonical device
    /// order.
    pub outputs: BTreeMap<DeviceId, Vec<u8>>,
    /// The recorded nondeterministic-input log (for replay).
    pub io_log: IoLog,
    /// Final per-space artifacts (lineage path, clock, instruction
    /// count, whole-image and per-page memory digests), ascending by
    /// space id with the root first — populated only when a trace sink
    /// is attached, for comparison against
    /// [`crate::ReplayOutcome::spaces`] and across replicas by the
    /// conformance harness.
    pub spaces: Vec<SpaceArtifact>,
    /// Lineage path of *every* space the run created (including spaces
    /// whose final state was not observable), ascending by space id —
    /// populated only when a trace sink is attached. This is the
    /// id→path key for rewriting recorded trace events into
    /// run-invariant form.
    pub space_paths: Vec<(u32, String)>,
}

impl RunOutcome {
    /// The console output bytes.
    pub fn console(&self) -> &[u8] {
        self.outputs
            .get(&DeviceId::ConsoleOut)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The console output as UTF-8 (lossy).
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(self.console()).into_owned()
    }
}

/// The Determinator kernel.
///
/// Construct one, optionally push device inputs, then [`Kernel::run`]
/// a root program. The root space is the only space with device
/// access; everything else lives in its subtree.
///
/// # Examples
///
/// ```
/// use det_kernel::{Kernel, KernelConfig};
///
/// let outcome = Kernel::new(KernelConfig::default()).run(|ctx| {
///     ctx.charge(1_000)?;
///     Ok(7)
/// });
/// assert_eq!(outcome.exit, Ok(7));
/// assert!(outcome.vclock_ns >= 1_000);
/// ```
pub struct Kernel {
    shared: Arc<Shared>,
}

impl Kernel {
    /// Creates a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Kernel {
        Kernel::build(config, None)
    }

    /// Creates a kernel wired to cluster migration hooks.
    pub fn with_cluster(config: KernelConfig, hooks: Arc<dyn ClusterHooks>) -> Kernel {
        Kernel::build(config, Some(hooks))
    }

    fn build(config: KernelConfig, cluster: Option<Arc<dyn ClusterHooks>>) -> Kernel {
        if let Some(sink) = config.trace.as_ref() {
            assert!(
                cluster.is_none(),
                "trace recording does not support cluster hooks: migration and \
                 residency costs are host-hook-driven and not replayable from a trace"
            );
            sink.set_meta(TraceMeta {
                costs: config.costs,
                policy: config.policy,
                vm_dispatch: config.vm_dispatch,
            });
        }
        let root = SlotCell::new(Slot::new_child(0, ROOT_PATH.to_string()));
        Kernel {
            shared: Arc::new(Shared {
                table: Mutex::new(vec![root]),
                devices: Mutex::new(DeviceHub::new(config.io)),
                costs: config.costs,
                policy: config.policy,
                cluster,
                vm_dispatch: config.vm_dispatch,
                hot: HotStats::default(),
                merge_accum: Mutex::new(MergeAccum::default()),
                trace: config.trace,
                shutdown: AtomicBool::new(false),
                faults: ArmedFaults::new(config.faults),
            }),
        }
    }

    /// Queues input bytes on a device (host side).
    pub fn push_input(&self, dev: DeviceId, data: impl Into<Vec<u8>>) {
        self.shared.devices.lock().push_input(dev, data.into());
    }

    /// Returns a handle that can push device input while the kernel
    /// runs (e.g., from a host timer thread).
    pub fn input_handle(&self) -> InputHandle {
        InputHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs `root` as the root space on the current thread, then shuts
    /// the space hierarchy down and reports the outcome.
    pub fn run<F>(self, root: F) -> RunOutcome
    where
        F: FnOnce(&mut SpaceCtx) -> NativeResult,
    {
        let root_cell = self.shared.cell(SpaceId::ROOT);
        let st = {
            let mut g = root_cell.m.lock();
            g.run = RunState::Running;
            g.state.take().expect("fresh root state")
        };
        let mut ctx = SpaceCtx::new(Arc::clone(&self.shared), SpaceId::ROOT, root_cell, st);
        let out = catch_unwind(AssertUnwindSafe(|| root(&mut ctx)));
        let exit = match out {
            Ok(Ok(code)) => Ok(code),
            Ok(Err(e)) => Err(e.as_trap()),
            Err(_) => Err(TrapKind::Panic),
        };
        ctx.record_exit(exit);
        let root_st = ctx.into_state();
        let vclock_ns = root_st.as_ref().map(|s| ps_to_ns(s.vclock_ps)).unwrap_or(0);

        // Shutdown: destroy every space, wake parked vehicles, join
        // them all, and only then collect stats and device output —
        // draining vehicles still bump hot counters on their way out,
        // and collecting first would drop those bumps from the
        // outcome. (The shutdown flag is published before the table
        // snapshot, and `start_child` re-checks it, so every vehicle
        // that exists is visible to this sweep.)
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let cells: Vec<Arc<SlotCell>> = self.shared.table.lock().clone();
        let mut handles = Vec::new();
        // Final per-space artifacts, for trace-replay comparison and
        // the conformance harness: the root from its just-returned
        // state, every other space from whatever state the destroy
        // sweep finds checked in. Only computed when recording —
        // digesting every space costs real work.
        let tracing = self.shared.trace.is_some();
        let mut spaces: Vec<SpaceArtifact> = Vec::new();
        let mut space_paths: Vec<(u32, String)> = Vec::new();
        for (idx, cell) in cells.iter().enumerate() {
            let mut g = cell.m.lock();
            if tracing {
                space_paths.push((idx as u32, g.path.clone()));
                let st = if idx == 0 {
                    root_st.as_deref()
                } else {
                    g.state.as_deref()
                };
                if let Some(st) = st {
                    spaces.push(SpaceArtifact::of(idx as u32, g.path.clone(), st));
                }
            }
            g.run = RunState::Destroyed;
            g.state = None;
            g.pending = None;
            g.cpu = None;
            if let Some(h) = g.thread.take() {
                handles.push(h);
            }
            drop(g);
            // Broadcast, not targeted: destruction is the one event
            // with arbitrarily many observers (uncounted; see
            // `KernelStats::condvar_wakeups`).
            cell.idle_cv.notify_all();
            cell.resume_cv.notify_all();
        }
        for h in handles {
            let _ = h.join();
        }
        let mut stats = KernelStats::default();
        self.shared.hot.fold_into(&mut stats);
        {
            let acc = self.shared.merge_accum.lock();
            stats.merges = acc.merges;
            stats.merge_totals.0 = acc.totals;
        }
        let devices = std::mem::replace(
            &mut *self.shared.devices.lock(),
            DeviceHub::new(IoMode::Record),
        );
        let (outputs, io_log) = devices.into_parts();
        RunOutcome {
            exit,
            vclock_ns,
            stats,
            host: self.shared.hot.host_stats(),
            outputs,
            io_log,
            spaces,
            space_paths,
        }
    }
}

/// Host-side handle for pushing device input during a run.
#[derive(Clone)]
pub struct InputHandle {
    shared: Arc<Shared>,
}

impl InputHandle {
    /// Queues input bytes on a device.
    pub fn push(&self, dev: DeviceId, data: impl Into<Vec<u8>>) {
        self.shared.devices.lock().push_input(dev, data.into());
    }
}

fn native_thread(
    shared: Arc<Shared>,
    cell: Arc<SlotCell>,
    id: SpaceId,
    entry: NativeEntry,
    st: Box<SpaceState>,
) {
    let mut ctx = SpaceCtx::new(Arc::clone(&shared), id, Arc::clone(&cell), st);
    let out = catch_unwind(AssertUnwindSafe(|| entry(&mut ctx)));
    if ctx.destroyed_by_kernel() {
        // The kernel itself tore this space down (shutdown/destroy):
        // the destroy sweep owns the slot's fate, and checking in here
        // would race it — the stop counters must not depend on which
        // side wins.
        return;
    }
    let (mut st, trace) = ctx.into_parts();
    let reason = match out {
        Ok(Ok(code)) => {
            if let Some(s) = st.as_mut() {
                s.regs.gpr[1] = code as u64;
            }
            StopReason::Halted
        }
        // This includes a *fabricated* `Destroyed` error (the kernel
        // never issued one — see the check above): the slot is live,
        // so the check-in below traps the parent instead of leaving
        // it waiting on a slot stuck in `Running` forever.
        Ok(Err(e)) => StopReason::Trap(e.as_trap()),
        Err(_) => StopReason::Trap(TrapKind::Panic),
    };
    let ev = trace.as_ref().map(|tr| match st.as_deref() {
        Some(s) => tr.check_in(
            id,
            s,
            final_reason(true, reason),
            true,
            VmCounters::default(),
        ),
        None => lost_state_check_in(id, final_reason(false, reason)),
    });
    // Always check in — even with the state lost (`st: None`), the
    // slot must leave `Running` so a waiting parent observes a
    // deterministic trap rather than deadlocking.
    shared.final_check_in(&cell, st, reason, ev);
}

/// Interprets a VM space's program on the current thread until it
/// stops. Returns the stop reason — or `None` iff kernel shutdown was
/// observed mid-run (the caller unwinds and the state dies with the
/// kernel) — plus this drive's counters, already folded into the hot
/// stats exactly once. Used by both vehicles: the slot's own thread
/// ([`vm_thread`]) and the waiting parent (inline dispatch).
fn vm_execute(
    shared: &Shared,
    id: SpaceId,
    st: &mut SpaceState,
    cpu: &mut Cpu,
) -> (Option<StopReason>, VmCounters) {
    let mut vmc = VmCounters::default();
    let stop = vm_execute_inner(shared, id, st, cpu, &mut vmc);
    shared
        .hot
        .vm_instructions
        .fetch_add(vmc.instructions, Relaxed);
    shared.hot.vm_tlb_hits.fetch_add(vmc.tlb_hits, Relaxed);
    shared
        .hot
        .vm_pages_walked
        .fetch_add(vmc.pages_walked, Relaxed);
    shared
        .hot
        .vm_icache_hits
        .fetch_add(vmc.icache_hits, Relaxed);
    shared
        .hot
        .vm_icache_fills
        .fetch_add(vmc.icache_fills, Relaxed);
    (stop, vmc)
}

fn vm_execute_inner(
    shared: &Shared,
    id: SpaceId,
    st: &mut SpaceState,
    cpu: &mut Cpu,
    vmc: &mut VmCounters,
) -> Option<StopReason> {
    let insn_ps = shared.costs.vm_insn_ps.max(1);
    let walk_ps = shared.costs.vm_tlb_fill_ps;
    // Interpret in bounded chunks so unlimited programs still observe
    // kernel shutdown between chunks.
    const CHUNK: u64 = 4_000_000;
    // The CPU's software TLB and decoded-instruction cache stay warm
    // across chunk boundaries, preemptions, and rendezvous (the slot
    // stores the CPU between drives). Parent-side mutations while the
    // state is parked (copy, merge, zero, perm, snap — even a
    // wholesale Tree image replacement) bump the address space's
    // generation or change its identity, so stale entries miss instead
    // of lying. The parent may also have rewritten the registers at
    // the rendezvous (Put with regs), so resync them on entry.
    cpu.regs = st.regs;
    let mut cache_mark = cpu.cache_stats;
    loop {
        let limit_insns = st.limit_ps.map(|ps| ps / insn_ps);
        let this_budget = limit_insns.map_or(CHUNK, |b| b.min(CHUNK));
        let insns_before = cpu.insn_count;
        let exit = cpu.run(&mut st.mem, Some(this_budget));
        let executed = cpu.insn_count - insns_before;
        let cache = cpu.cache_stats.since(&cache_mark);
        cache_mark = cpu.cache_stats;
        st.regs = cpu.regs;
        st.insn_count += executed;
        // Instructions advance the clock at the TLB-hit rate; every
        // page walk (TLB fill or slow-path access) is charged on top.
        // Walk costs hit the clock but not the work limit, preserving
        // the "limit of N ns runs exactly N instructions" contract.
        st.vclock_ps = st
            .vclock_ps
            .saturating_add(executed.saturating_mul(insn_ps))
            .saturating_add(cache.pages_walked.saturating_mul(walk_ps));
        if let Some(l) = st.limit_ps.as_mut() {
            *l = l.saturating_sub(executed.saturating_mul(insn_ps));
        }
        vmc.instructions += executed;
        vmc.tlb_hits += cache.tlb_read_hits + cache.tlb_write_hits;
        vmc.pages_walked += cache.pages_walked;
        vmc.icache_hits += cache.icache_hits;
        vmc.icache_fills += cache.icache_fills;
        let reason = match exit {
            VmExit::Halt => {
                // Home-node return before the final stop (§3.3).
                let home = st.home_node;
                let _ = shared.migrate(id, st, home);
                return Some(StopReason::Halted);
            }
            VmExit::Sys(0) => StopReason::Ret,
            VmExit::Sys(_) => StopReason::Trap(TrapKind::Fault("undefined syscall")),
            VmExit::Trap(t) => StopReason::Trap(t.into()),
            VmExit::OutOfBudget => {
                if shared.shutdown.load(std::sync::atomic::Ordering::Relaxed) {
                    return None;
                }
                match st.limit_ps {
                    // Chunk boundary only: keep interpreting.
                    None => continue,
                    Some(rem) if rem >= insn_ps => continue,
                    // The real work limit is exhausted.
                    Some(_) => StopReason::LimitReached,
                }
            }
        };
        if matches!(reason, StopReason::Ret | StopReason::Trap(_)) {
            let home = st.home_node;
            if shared.migrate(id, st, home).is_err() && st.cur_node != home {
                // Unreachable home node: surfaced as a fault.
                return Some(StopReason::Trap(TrapKind::Fault("home node unreachable")));
            }
        }
        return Some(reason);
    }
}

/// Dedicated-thread vehicle for a VM space (`VmDispatch::Threaded`).
fn vm_thread(shared: Arc<Shared>, cell: Arc<SlotCell>, id: SpaceId, st: Box<SpaceState>) {
    // Contain interpreter panics exactly like `native_thread` contains
    // program panics: the state is lost inside the unwound closure, but
    // the slot must still leave `Running` as a terminal deterministic
    // trap — a vehicle dying silently would strand its waiting parent,
    // and an unwound thread would take every descendant down with it.
    let sh = Arc::clone(&shared);
    let c = Arc::clone(&cell);
    if catch_unwind(AssertUnwindSafe(move || vm_drive(shared, cell, id, st))).is_err() {
        let reason = StopReason::Trap(TrapKind::Panic);
        let ev = sh
            .trace
            .as_ref()
            .map(|_| lost_state_check_in(id, final_reason(false, reason)));
        sh.final_check_in(&c, None, reason, ev);
    }
}

fn vm_drive(shared: Arc<Shared>, cell: Arc<SlotCell>, id: SpaceId, mut st: Box<SpaceState>) {
    // One CPU for the space's lifetime: caches stay warm across
    // preemptions and rendezvous.
    let mut cpu = Cpu::new();
    // Thread-local trace cursor, resynced after every park: the parent
    // may have rewritten this space's memory (and snapshot) at the
    // rendezvous, and replay re-applies those from the parent's events.
    let mut tr = shared.trace.as_ref().map(|_| TraceCtx::new(&st));
    loop {
        let (stop, vmc) = vm_execute(&shared, id, &mut st, &mut cpu);
        match stop {
            // Shutdown observed: the state dies with the kernel.
            None => return,
            Some(StopReason::Halted) => {
                let ev = tr
                    .as_ref()
                    .map(|tr| tr.check_in(id, &st, StopReason::Halted, true, vmc));
                shared.final_check_in(&cell, Some(st), StopReason::Halted, ev);
                return;
            }
            Some(reason) => {
                let ev = tr
                    .as_ref()
                    .map(|tr| tr.check_in(id, &st, reason, false, vmc));
                st = match shared.park(&cell, st, reason, ev) {
                    Ok(st) => st,
                    Err(_) => return,
                };
                if let Some(tr) = tr.as_mut() {
                    tr.resync(&st);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Arc<Shared> {
        Arc::clone(&Kernel::new(KernelConfig::default()).shared)
    }

    /// Satellite regression: a vehicle dying *without* state on a live
    /// slot must still leave `Running` — checked in as a terminal
    /// deterministic trap — or the waiting parent deadlocks.
    #[test]
    fn final_check_in_without_state_synthesizes_terminal_trap() {
        let sh = shared();
        let (_, cell) = sh.new_slot(0, "/t".to_string());
        {
            let mut g = cell.m.lock();
            g.state = None;
            g.run = RunState::Running;
        }
        sh.final_check_in(&cell, None, StopReason::Halted, None);
        let g = cell.m.lock();
        assert!(matches!(
            g.run,
            RunState::Idle(StopReason::Trap(TrapKind::Panic))
        ));
        assert!(g.state.is_some(), "wait_idle requires checked-in state");
        assert!(g.terminal, "nothing is left to resume");
        assert_eq!(sh.hot.traps.load(Relaxed), 1);
    }

    /// Satellite regression: a park raced by destruction must count
    /// nothing — the stop never materialized as a rendezvous, and
    /// replay-comparable counters must not drift.
    #[test]
    fn park_after_destroy_counts_nothing() {
        let sh = shared();
        let (_, cell) = sh.new_slot(0, "/t".to_string());
        {
            let mut g = cell.m.lock();
            g.state = None;
            g.run = RunState::Destroyed;
        }
        let st = Box::new(SpaceState::new(0));
        assert!(matches!(
            sh.park(&cell, st, StopReason::Ret, None),
            Err(KernelError::Destroyed)
        ));
        assert_eq!(sh.hot.rets.load(Relaxed), 0);
        assert_eq!(sh.hot.condvar_wakeups.load(Relaxed), 0);
    }

    /// Same drift rule for the final check-in of a destroyed slot.
    #[test]
    fn final_check_in_on_destroyed_slot_is_noop() {
        let sh = shared();
        let (_, cell) = sh.new_slot(0, "/t".to_string());
        {
            let mut g = cell.m.lock();
            g.state = None;
            g.run = RunState::Destroyed;
        }
        sh.final_check_in(
            &cell,
            Some(Box::new(SpaceState::new(0))),
            StopReason::Trap(TrapKind::Panic),
            None,
        );
        let g = cell.m.lock();
        assert!(matches!(g.run, RunState::Destroyed));
        assert!(g.state.is_none());
        assert_eq!(sh.hot.traps.load(Relaxed), 0);
    }

    /// A successful check-in charges the calibrated rendezvous park
    /// cost exactly once, for resumable stops only.
    #[test]
    fn check_in_charges_rendezvous_cost() {
        let sh = shared();
        let (_, cell) = sh.new_slot(0, "/t".to_string());
        {
            let mut g = cell.m.lock();
            let st = g.state.take().expect("fresh slot");
            g.run = RunState::Running;
            sh.check_in_locked(&mut g, st, StopReason::Ret);
            assert_eq!(g.state.as_ref().unwrap().vclock_ps, sh.costs.rendezvous_ps);
            let st = g.state.take().expect("checked in");
            g.run = RunState::Running;
            sh.check_in_locked(&mut g, st, StopReason::Halted);
            // Halting is final: no park, no park cost.
            assert_eq!(g.state.as_ref().unwrap().vclock_ps, sh.costs.rendezvous_ps);
        }
        assert_eq!(sh.hot.rets.load(Relaxed), 1);
    }
}
