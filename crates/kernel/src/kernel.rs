//! The kernel proper: space table, rendezvous, execution vehicles.
//!
//! Spaces interact *only* through `Put`/`Get`/`Ret` (§3.2). The
//! implementation keeps every stopped space's state (registers +
//! private address space) in the kernel's space table; when a space
//! runs, its state is checked out to a host thread, making it
//! physically inaccessible to every other space. `Put`/`Get` on a
//! running child blocks until the child checks its state back in via
//! `Ret`, a trap, or a limit preemption — the "rendezvous" semantics
//! that make the space hierarchy a deterministic Kahn network.
//!
//! Host threads are *execution vehicles only*: all cross-space
//! communication is kernel-mediated, so results are independent of how
//! the host schedules the threads (tests assert this empirically).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use det_memory::{AddressSpace, ConflictPolicy};
use det_vm::{Cpu, Regs, VmExit};

use crate::cost::{CostModel, ps_to_ns};
use crate::ctx::SpaceCtx;
use crate::device::{DeviceHub, DeviceId, IoLog, IoMode};
use crate::error::{KernelError, Result, TrapKind};
use crate::ids::SpaceId;
use crate::program::{NativeEntry, NativeResult, Program};
use crate::stats::KernelStats;
use crate::syscall::StopReason;

/// Cross-node migration callbacks, implemented by `det-cluster`.
///
/// The kernel core knows only that a space has a *current node* and a
/// *home node*; when a syscall names a child on another node, the
/// caller migrates there first (§3.3). The hook owns per-node page
/// residency and the network cost model, and returns the virtual
/// picoseconds the leg costs.
pub trait ClusterHooks: Send + Sync {
    /// Number of nodes; node fields must be below this.
    fn node_count(&self) -> u16;

    /// Called when `space` moves from node `from` to node `to` with
    /// its memory image `mem`. Returns picoseconds to charge.
    fn on_migrate(&self, space: SpaceId, from: u16, to: u16, mem: &mut AddressSpace) -> u64;

    /// Called at every parent↔child rendezvous (`Put`/`Get` after the
    /// child stops): the hook may harvest the stopped child's page
    /// accesses for demand-paging accounting. `parent_node` is where
    /// the caller currently executes. Returns picoseconds to charge to
    /// the caller.
    fn on_rendezvous(
        &self,
        child: SpaceId,
        child_node: u16,
        parent_node: u16,
        child_mem: &mut AddressSpace,
    ) -> u64 {
        let _ = (child, child_node, parent_node, child_mem);
        0
    }

    /// Called when pages are virtually copied between spaces (both
    /// `Put`+Copy and `Get`+Copy): destination pages share the
    /// sources' frames, so they inherit the sources' node residency.
    /// `src_start_vpn`/`dst_start_vpn` describe the aligned window.
    fn on_copy(
        &self,
        src: SpaceId,
        dst: SpaceId,
        src_start_vpn: u64,
        dst_start_vpn: u64,
        pages: u64,
    ) {
        let _ = (src, dst, src_start_vpn, dst_start_vpn, pages);
    }
}

/// Kernel construction parameters.
#[derive(Debug, Default)]
pub struct KernelConfig {
    /// Virtual-time cost model.
    pub costs: CostModel,
    /// Merge conflict policy (paper default: strict).
    pub policy: ConflictPolicy,
    /// Record or replay nondeterministic inputs.
    pub io: IoMode,
}

/// Execution state of a space slot.
pub(crate) enum RunState {
    /// Stopped; `state` present in the slot.
    Idle(StopReason),
    /// Checked out to its thread (or handoff pending).
    Running,
    /// Gone; threads observing this unwind.
    Destroyed,
}

/// The movable per-space state, checked in/out around execution.
pub(crate) struct SpaceState {
    pub regs: Regs,
    pub mem: AddressSpace,
    pub snap: Option<AddressSpace>,
    /// Virtual clock in picoseconds.
    pub vclock_ps: u64,
    /// Remaining work budget in picoseconds, if limited.
    pub limit_ps: Option<u64>,
    /// VM instructions retired by this space.
    pub insn_count: u64,
    pub home_node: u16,
    pub cur_node: u16,
}

impl SpaceState {
    fn new(node: u16) -> SpaceState {
        SpaceState {
            regs: Regs::default(),
            mem: AddressSpace::new(),
            snap: None,
            vclock_ps: 0,
            limit_ps: None,
            insn_count: 0,
            home_node: node,
            cur_node: node,
        }
    }

    pub(crate) fn clone_image(&self) -> SpaceState {
        SpaceState {
            regs: self.regs,
            mem: self.mem.clone(),
            snap: self.snap.clone(),
            vclock_ps: self.vclock_ps,
            limit_ps: self.limit_ps,
            insn_count: self.insn_count,
            home_node: self.home_node,
            cur_node: self.cur_node,
        }
    }
}

pub(crate) struct Slot {
    pub children: BTreeMap<u64, SpaceId>,
    pub run: RunState,
    pub state: Option<Box<SpaceState>>,
    pub pending: Option<Program>,
    pub thread: Option<JoinHandle<()>>,
}

impl Slot {
    pub(crate) fn new_child(node: u16) -> Slot {
        Slot {
            children: BTreeMap::new(),
            run: RunState::Idle(StopReason::Unstarted),
            state: Some(Box::new(SpaceState::new(node))),
            pending: None,
            thread: None,
        }
    }
}

pub(crate) struct KState {
    pub slots: Vec<Slot>,
    pub devices: DeviceHub,
    pub stats: KernelStats,
}

/// Counters bumped on hot paths without taking the state lock.
///
/// Relaxed atomics: each is an independent event count, folded into
/// [`KernelStats`] only at collection time (`Kernel::run` shutdown), so
/// no ordering between them is ever observed mid-run. The *values* are
/// deterministic — they count kernel-mediated events, not host
/// scheduling — only the bump itself is lock-free.
#[derive(Default)]
pub(crate) struct HotStats {
    pub migrations: std::sync::atomic::AtomicU64,
    pub vm_instructions: std::sync::atomic::AtomicU64,
    pub vm_tlb_hits: std::sync::atomic::AtomicU64,
    pub vm_pages_walked: std::sync::atomic::AtomicU64,
    pub vm_icache_hits: std::sync::atomic::AtomicU64,
    pub vm_icache_fills: std::sync::atomic::AtomicU64,
}

impl HotStats {
    /// Folds the hot counters into a stats record (read-time merge).
    pub(crate) fn fold_into(&self, stats: &mut KernelStats) {
        use std::sync::atomic::Ordering::Relaxed;
        stats.migrations += self.migrations.load(Relaxed);
        stats.vm_instructions += self.vm_instructions.load(Relaxed);
        stats.vm_tlb_hits += self.vm_tlb_hits.load(Relaxed);
        stats.vm_pages_walked += self.vm_pages_walked.load(Relaxed);
        stats.vm_icache_hits += self.vm_icache_hits.load(Relaxed);
        stats.vm_icache_fills += self.vm_icache_fills.load(Relaxed);
    }
}

pub(crate) struct Shared {
    pub state: Mutex<KState>,
    pub cv: Condvar,
    pub costs: CostModel,
    pub policy: ConflictPolicy,
    pub cluster: Option<Arc<dyn ClusterHooks>>,
    /// Lock-free hot-path counters (folded into `KState::stats` at
    /// collection time).
    pub hot: HotStats,
    /// Set at kernel shutdown; checked lock-free by hot paths
    /// (`charge`) so compute-looping programs observe destruction.
    pub shutdown: std::sync::atomic::AtomicBool,
}

impl Shared {
    /// Blocks until `child` is stopped with its state checked in;
    /// returns its stop reason.
    pub(crate) fn wait_idle(
        &self,
        g: &mut parking_lot::MutexGuard<'_, KState>,
        child: SpaceId,
    ) -> Result<StopReason> {
        loop {
            let slot = &g.slots[child.0 as usize];
            match slot.run {
                RunState::Idle(r) if slot.state.is_some() => return Ok(r),
                RunState::Destroyed => return Err(KernelError::Destroyed),
                _ => self.cv.wait(g),
            }
        }
    }

    /// A running space checks its state in with `reason`, waits for
    /// its parent to restart it, and checks the state back out.
    pub(crate) fn park(
        &self,
        id: SpaceId,
        st: Box<SpaceState>,
        reason: StopReason,
    ) -> Result<Box<SpaceState>> {
        let mut g = self.state.lock();
        {
            match reason {
                StopReason::Ret => g.stats.rets += 1,
                StopReason::Trap(_) => g.stats.traps += 1,
                StopReason::LimitReached => g.stats.limit_preemptions += 1,
                _ => {}
            }
            let slot = &mut g.slots[id.0 as usize];
            if matches!(slot.run, RunState::Destroyed) {
                return Err(KernelError::Destroyed);
            }
            slot.state = Some(st);
            slot.run = RunState::Idle(reason);
        }
        self.cv.notify_all();
        loop {
            let slot = &mut g.slots[id.0 as usize];
            match slot.run {
                RunState::Running => {
                    if let Some(st) = slot.state.take() {
                        return Ok(st);
                    }
                    self.cv.wait(&mut g);
                }
                RunState::Destroyed => return Err(KernelError::Destroyed),
                RunState::Idle(_) => self.cv.wait(&mut g),
            }
        }
    }

    /// Final check-in of a space whose program finished or trapped
    /// terminally; its thread exits after this.
    pub(crate) fn final_check_in(
        &self,
        id: SpaceId,
        st: Option<Box<SpaceState>>,
        reason: StopReason,
    ) {
        let mut g = self.state.lock();
        if matches!(reason, StopReason::Trap(_)) {
            g.stats.traps += 1;
        }
        let slot = &mut g.slots[id.0 as usize];
        if !matches!(slot.run, RunState::Destroyed) {
            if let Some(st) = st {
                slot.state = Some(st);
                slot.run = RunState::Idle(reason);
            }
        }
        self.cv.notify_all();
    }

    /// Starts or resumes an idle child whose state is checked in.
    ///
    /// The caller has already applied the rendezvous clock rules;
    /// `parent_vclock_ps` stamps the child's resume time.
    pub(crate) fn start_child(
        self: &Arc<Self>,
        g: &mut parking_lot::MutexGuard<'_, KState>,
        child: SpaceId,
        limit_ns: Option<u64>,
        parent_vclock_ps: u64,
        prior: StopReason,
    ) -> Result<()> {
        let slot = &mut g.slots[child.0 as usize];
        {
            let st = slot
                .state
                .as_mut()
                .expect("start_child requires checked-in state");
            st.vclock_ps = st.vclock_ps.max(parent_vclock_ps);
            st.limit_ps = limit_ns.map(crate::cost::ns_to_ps);
        }
        if slot.thread.is_none() {
            let program = slot.pending.take().ok_or(KernelError::NoProgram)?;
            let st = slot.state.take().expect("checked above");
            slot.run = RunState::Running;
            g.stats.threads_spawned += 1;
            let shared = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name(format!("space-{}", child.0))
                .spawn(move || match program {
                    Program::Native(entry) => native_thread(shared, child, entry, st),
                    Program::Vm => vm_thread(shared, child, st),
                })
                .expect("spawn space thread");
            g.slots[child.0 as usize].thread = Some(handle);
        } else {
            if !prior.resumable() {
                return Err(KernelError::NoProgram);
            }
            slot.run = RunState::Running;
            self.cv.notify_all();
        }
        Ok(())
    }

    /// Migrates `st` to `target` node if needed, charging the hook's
    /// cost. `Err(NodeUnreachable)` without cluster hooks.
    pub(crate) fn migrate(&self, id: SpaceId, st: &mut SpaceState, target: u16) -> Result<()> {
        if st.cur_node == target {
            return Ok(());
        }
        let hooks = self
            .cluster
            .as_ref()
            .ok_or(KernelError::NodeUnreachable(target))?;
        if target >= hooks.node_count() {
            return Err(KernelError::NodeUnreachable(target));
        }
        let cost = hooks.on_migrate(id, st.cur_node, target, &mut st.mem);
        st.vclock_ps = st.vclock_ps.saturating_add(cost);
        st.cur_node = target;
        // Hot path: a stat bump must not serialize on the state lock.
        self.hot
            .migrations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
}

/// Outcome of a full kernel run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The root program's exit status, or the trap that ended it.
    pub exit: std::result::Result<i32, TrapKind>,
    /// The root space's final virtual clock (nanoseconds): the
    /// virtual-time makespan of the whole computation.
    pub vclock_ns: u64,
    /// Kernel operation counters.
    pub stats: KernelStats,
    /// Device output buffers (console, etc.).
    pub outputs: HashMap<DeviceId, Vec<u8>>,
    /// The recorded nondeterministic-input log (for replay).
    pub io_log: IoLog,
}

impl RunOutcome {
    /// The console output bytes.
    pub fn console(&self) -> &[u8] {
        self.outputs
            .get(&DeviceId::ConsoleOut)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The console output as UTF-8 (lossy).
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(self.console()).into_owned()
    }
}

/// The Determinator kernel.
///
/// Construct one, optionally push device inputs, then [`Kernel::run`]
/// a root program. The root space is the only space with device
/// access; everything else lives in its subtree.
///
/// # Examples
///
/// ```
/// use det_kernel::{Kernel, KernelConfig};
///
/// let outcome = Kernel::new(KernelConfig::default()).run(|ctx| {
///     ctx.charge(1_000)?;
///     Ok(7)
/// });
/// assert_eq!(outcome.exit, Ok(7));
/// assert!(outcome.vclock_ns >= 1_000);
/// ```
pub struct Kernel {
    shared: Arc<Shared>,
}

impl Kernel {
    /// Creates a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Kernel {
        Kernel::build(config, None)
    }

    /// Creates a kernel wired to cluster migration hooks.
    pub fn with_cluster(config: KernelConfig, hooks: Arc<dyn ClusterHooks>) -> Kernel {
        Kernel::build(config, Some(hooks))
    }

    fn build(config: KernelConfig, cluster: Option<Arc<dyn ClusterHooks>>) -> Kernel {
        let root = Slot {
            children: BTreeMap::new(),
            run: RunState::Idle(StopReason::Unstarted),
            state: Some(Box::new(SpaceState::new(0))),
            pending: None,
            thread: None,
        };
        Kernel {
            shared: Arc::new(Shared {
                state: Mutex::new(KState {
                    slots: vec![root],
                    devices: DeviceHub::new(config.io),
                    stats: KernelStats::default(),
                }),
                cv: Condvar::new(),
                costs: config.costs,
                policy: config.policy,
                cluster,
                hot: HotStats::default(),
                shutdown: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Queues input bytes on a device (host side).
    pub fn push_input(&self, dev: DeviceId, data: impl Into<Vec<u8>>) {
        self.shared
            .state
            .lock()
            .devices
            .push_input(dev, data.into());
    }

    /// Returns a handle that can push device input while the kernel
    /// runs (e.g., from a host timer thread).
    pub fn input_handle(&self) -> InputHandle {
        InputHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs `root` as the root space on the current thread, then shuts
    /// the space hierarchy down and reports the outcome.
    pub fn run<F>(self, root: F) -> RunOutcome
    where
        F: FnOnce(&mut SpaceCtx) -> NativeResult,
    {
        let st = {
            let mut g = self.shared.state.lock();
            let slot = &mut g.slots[SpaceId::ROOT.0 as usize];
            slot.run = RunState::Running;
            slot.state.take().expect("fresh root state")
        };
        let mut ctx = SpaceCtx::new(Arc::clone(&self.shared), SpaceId::ROOT, st);
        let out = catch_unwind(AssertUnwindSafe(|| root(&mut ctx)));
        let root_st = ctx.into_state();
        let exit = match out {
            Ok(Ok(code)) => Ok(code),
            Ok(Err(e)) => Err(e.as_trap()),
            Err(_) => Err(TrapKind::Panic),
        };
        let vclock_ns = root_st.as_ref().map(|s| ps_to_ns(s.vclock_ps)).unwrap_or(0);

        // Shutdown: destroy every space, wake parked threads, join.
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let (handles, stats, outputs, io_log) = {
            let mut g = self.shared.state.lock();
            let mut handles = Vec::new();
            for slot in &mut g.slots {
                slot.run = RunState::Destroyed;
                slot.state = None;
                slot.pending = None;
                if let Some(h) = slot.thread.take() {
                    handles.push(h);
                }
            }
            self.shared.cv.notify_all();
            let mut stats = g.stats.clone();
            self.shared.hot.fold_into(&mut stats);
            let devices = std::mem::replace(&mut g.devices, DeviceHub::new(IoMode::Record));
            let (outputs, io_log) = devices.into_parts();
            (handles, stats, outputs, io_log)
        };
        for h in handles {
            let _ = h.join();
        }
        RunOutcome {
            exit,
            vclock_ns,
            stats,
            outputs,
            io_log,
        }
    }
}

/// Host-side handle for pushing device input during a run.
#[derive(Clone)]
pub struct InputHandle {
    shared: Arc<Shared>,
}

impl InputHandle {
    /// Queues input bytes on a device.
    pub fn push(&self, dev: DeviceId, data: impl Into<Vec<u8>>) {
        self.shared
            .state
            .lock()
            .devices
            .push_input(dev, data.into());
    }
}

fn native_thread(shared: Arc<Shared>, id: SpaceId, entry: NativeEntry, st: Box<SpaceState>) {
    let mut ctx = SpaceCtx::new(Arc::clone(&shared), id, st);
    let out = catch_unwind(AssertUnwindSafe(|| entry(&mut ctx)));
    let mut st = ctx.into_state();
    let reason = match out {
        Ok(Ok(code)) => {
            if let Some(s) = st.as_mut() {
                s.regs.gpr[1] = code as u64;
            }
            StopReason::Halted
        }
        Ok(Err(KernelError::Destroyed)) => return,
        Ok(Err(e)) => StopReason::Trap(e.as_trap()),
        Err(_) => StopReason::Trap(TrapKind::Panic),
    };
    if st.is_none() {
        // The program lost its state to a destroy but returned anyway.
        return;
    }
    shared.final_check_in(id, st, reason);
}

fn vm_thread(shared: Arc<Shared>, id: SpaceId, mut st: Box<SpaceState>) {
    use std::sync::atomic::Ordering::Relaxed;
    let insn_ps = shared.costs.vm_insn_ps.max(1);
    let walk_ps = shared.costs.vm_tlb_fill_ps;
    // Interpret in bounded chunks so unlimited programs still observe
    // kernel shutdown between chunks.
    const CHUNK: u64 = 4_000_000;
    // One CPU for the space's lifetime: its software TLB and decoded-
    // instruction cache stay warm across chunk boundaries, preemptions,
    // and rendezvous. Parent-side mutations while the state is parked
    // (copy, merge, zero, perm, snap — even a wholesale Tree image
    // replacement) bump the address space's generation or change its
    // identity, so stale entries miss instead of lying.
    let mut cpu = Cpu::new();
    cpu.regs = st.regs;
    let mut cache_mark = cpu.cache_stats;
    loop {
        let limit_insns = st.limit_ps.map(|ps| ps / insn_ps);
        let this_budget = limit_insns.map_or(CHUNK, |b| b.min(CHUNK));
        let insns_before = cpu.insn_count;
        let exit = cpu.run(&mut st.mem, Some(this_budget));
        let executed = cpu.insn_count - insns_before;
        let cache = cpu.cache_stats.since(&cache_mark);
        cache_mark = cpu.cache_stats;
        st.regs = cpu.regs;
        st.insn_count += executed;
        // Instructions advance the clock at the TLB-hit rate; every
        // page walk (TLB fill or slow-path access) is charged on top.
        // Walk costs hit the clock but not the work limit, preserving
        // the "limit of N ns runs exactly N instructions" contract.
        st.vclock_ps = st
            .vclock_ps
            .saturating_add(executed.saturating_mul(insn_ps))
            .saturating_add(cache.pages_walked.saturating_mul(walk_ps));
        if let Some(l) = st.limit_ps.as_mut() {
            *l = l.saturating_sub(executed.saturating_mul(insn_ps));
        }
        shared.hot.vm_instructions.fetch_add(executed, Relaxed);
        shared
            .hot
            .vm_tlb_hits
            .fetch_add(cache.tlb_read_hits + cache.tlb_write_hits, Relaxed);
        shared
            .hot
            .vm_pages_walked
            .fetch_add(cache.pages_walked, Relaxed);
        shared
            .hot
            .vm_icache_hits
            .fetch_add(cache.icache_hits, Relaxed);
        shared
            .hot
            .vm_icache_fills
            .fetch_add(cache.icache_fills, Relaxed);
        let reason = match exit {
            VmExit::Halt => {
                // Home-node return before the final stop (§3.3).
                let home = st.home_node;
                let _ = shared.migrate(id, &mut st, home);
                shared.final_check_in(id, Some(st), StopReason::Halted);
                return;
            }
            VmExit::Sys(0) => StopReason::Ret,
            VmExit::Sys(_) => StopReason::Trap(TrapKind::Fault("undefined syscall")),
            VmExit::Trap(t) => StopReason::Trap(t.into()),
            VmExit::OutOfBudget => {
                if shared.shutdown.load(std::sync::atomic::Ordering::Relaxed) {
                    return;
                }
                match st.limit_ps {
                    // Chunk boundary only: keep interpreting.
                    None => continue,
                    Some(rem) if rem >= insn_ps => continue,
                    // The real work limit is exhausted.
                    Some(_) => StopReason::LimitReached,
                }
            }
        };
        if matches!(reason, StopReason::Ret | StopReason::Trap(_)) {
            let home = st.home_node;
            if shared.migrate(id, &mut st, home).is_err() && st.cur_node != home {
                // Unreachable home node: treat as fault.
                shared.final_check_in(
                    id,
                    Some(st),
                    StopReason::Trap(TrapKind::Fault("home node unreachable")),
                );
                return;
            }
        }
        st = match shared.park(id, st, reason) {
            Ok(st) => st,
            Err(_) => return,
        };
        // The parent may have rewritten the registers at the
        // rendezvous (Put with regs); memory mutations are covered by
        // generation/space-id validation inside the CPU's caches.
        cpu.regs = st.regs;
    }
}
