//! Programs: what a space executes.

use crate::ctx::SpaceCtx;
use crate::error::KernelError;

/// Result of a native program: an exit status, or an error that the
/// kernel reports as a trap.
pub type NativeResult = std::result::Result<i32, KernelError>;

/// Entry point of a native program.
pub type NativeEntry = Box<dyn FnOnce(&mut SpaceCtx) -> NativeResult + Send + 'static>;

/// A program installable into a space via `Put`.
pub enum Program {
    /// A host closure driven through [`SpaceCtx`]: realistic workloads
    /// that compute real results, declaring their compute cost via
    /// [`SpaceCtx::charge`]. Preemptible at kernel entry points.
    Native(NativeEntry),
    /// Interpreted det-vm code executing from the space's own memory
    /// at `regs.pc` — fully contained, preemptible mid-stream with
    /// exact instruction counting. This is the mode in which the
    /// kernel can enforce determinism on *arbitrary* code.
    Vm,
}

impl Program {
    /// Wraps a closure as a native program.
    ///
    /// # Examples
    ///
    /// ```
    /// use det_kernel::Program;
    /// let p = Program::native(|ctx| {
    ///     ctx.charge(100)?;
    ///     Ok(0)
    /// });
    /// assert!(matches!(p, Program::Native(_)));
    /// ```
    pub fn native<F>(f: F) -> Program
    where
        F: FnOnce(&mut SpaceCtx) -> NativeResult + Send + 'static,
    {
        Program::Native(Box::new(f))
    }

    /// The pure-data shadow of this program (what a trace records).
    pub fn kind(&self) -> crate::ProgramKind {
        match self {
            Program::Native(_) => crate::ProgramKind::Native,
            Program::Vm => crate::ProgramKind::Vm,
        }
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Program::Native(_) => write!(f, "Program::Native"),
            Program::Vm => write!(f, "Program::Vm"),
        }
    }
}
