//! Wire codec for shard-to-shard space transfer.
//!
//! Cluster migration moves memory between kernel shards as
//! [`SpaceDelta`]s — the same leaf-granularity encoding checkpoints
//! persist (DESIGN.md §9) — serialized to the checkpoint JSON form.
//! Reusing one codec keeps every byte that crosses a shard link
//! byte-stable and replayable: the data plane transfers exactly what
//! `delta_since`/`apply_delta` round-trip, nothing more.

use det_memory::SpaceDelta;
use serde::Value;

/// Encodes a delta in the checkpoint JSON leaf encoding. The output is
/// canonical: the same delta always encodes to the same bytes, so
/// transfer sizes (and the virtual-time charges derived from them) are
/// deterministic.
pub fn delta_to_json(d: &SpaceDelta) -> String {
    serde_json::to_string(&crate::trace::v_delta(d)).expect("delta encoding is infallible")
}

/// Decodes a delta produced by [`delta_to_json`].
pub fn delta_from_json(s: &str) -> Result<SpaceDelta, String> {
    let v: Value = serde_json::from_str(s).map_err(|e| format!("delta wire decode: {e}"))?;
    crate::trace::p_delta(&v).map_err(|e| format!("delta wire decode: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use det_memory::{AddressSpace, Perm, Region};

    #[test]
    fn delta_json_roundtrip() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x4000), Perm::RW).unwrap();
        s.write(0x2000, b"wire codec").unwrap();
        s.set_perm(Region::new(0x3000, 0x4000), Perm::R).unwrap();
        let d = s.delta_since(&AddressSpace::new());
        let json = delta_to_json(&d);
        assert_eq!(json, delta_to_json(&d), "encoding is canonical");
        let back = delta_from_json(&json).unwrap();
        let mut replica = AddressSpace::new();
        replica.apply_delta(&back).unwrap();
        assert_eq!(replica.content_digest(), s.content_digest());
    }
}
