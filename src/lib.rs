//! **determinator** — a Rust reproduction of *"Efficient
//! System-Enforced Deterministic Parallelism"* (Aviram, Weng, Hu,
//! Ford; OSDI 2010).
//!
//! Determinator is an operating system that makes *all* unprivileged
//! computation deterministic by construction: user code runs in a
//! hierarchy of single-threaded [`kernel::SpaceCtx`] *spaces* with
//! private virtual memory, three system calls (Put/Get/Ret), and no
//! access to any nondeterministic input except explicit, loggable
//! device events at the root. On top, a user-level runtime rebuilds
//! processes, a shared file system, shared-memory threads and even
//! legacy lock-based APIs — all race-free or
//! deterministically-scheduled.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`memory`] | `det-memory` | paged COW address spaces, snapshots, byte-granularity merge |
//! | [`vm`] | `det-vm` | deterministic RISC-style VM with exact instruction limits |
//! | [`kernel`] | `det-kernel` | spaces, Put/Get/Ret, devices, virtual-time cost model |
//! | [`runtime`] | `det-runtime` | fork/exec/wait, replicated fs, threads, dsched, shell |
//! | [`cluster`] | `det-cluster` | space migration across simulated nodes |
//! | [`workloads`] | `det-workloads` | the paper's benchmarks + baselines |
//!
//! # Quickstart
//!
//! The paper's headline example: two "threads" racing on `x` and `y`
//! swap them cleanly, because each works in a private workspace and
//! the kernel merges their writes at join:
//!
//! ```
//! use determinator::kernel::{
//!     CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec,
//! };
//! use determinator::memory::{Perm, Region};
//!
//! let shared = Region::new(0x1000, 0x2000);
//! let (x, y) = (0x1000, 0x1008);
//! let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
//!     ctx.mem_mut().map_zero(shared, Perm::RW)?;
//!     ctx.mem_mut().write_u64(x, 1)?;
//!     ctx.mem_mut().write_u64(y, 2)?;
//!     ctx.put(0, PutSpec::new()
//!         .program(Program::native(move |c| {
//!             let v = c.mem().read_u64(y)?;
//!             c.mem_mut().write_u64(x, v)?; // x = y
//!             Ok(0)
//!         }))
//!         .copy(CopySpec::mirror(shared)).snap().start())?;
//!     ctx.put(1, PutSpec::new()
//!         .program(Program::native(move |c| {
//!             let v = c.mem().read_u64(x)?;
//!             c.mem_mut().write_u64(y, v)?; // y = x
//!             Ok(0)
//!         }))
//!         .copy(CopySpec::mirror(shared)).snap().start())?;
//!     ctx.get(0, GetSpec::new().merge(shared))?;
//!     ctx.get(1, GetSpec::new().merge(shared))?;
//!     assert_eq!(ctx.mem().read_u64(x)?, 2);
//!     assert_eq!(ctx.mem().read_u64(y)?, 1);
//!     Ok(0)
//! });
//! assert_eq!(out.exit, Ok(0));
//! ```
//!
//! See `examples/` for the actor simulation (Figure 1), the parallel
//! make scenario (Figure 4), the scripted shell, record/replay, and
//! cluster distribution.

/// Paged copy-on-write memory: `det-memory`.
pub mod memory {
    pub use det_memory::*;
}

/// Deterministic virtual CPU: `det-vm`.
pub mod vm {
    pub use det_vm::*;
}

/// The Determinator kernel: `det-kernel`.
pub mod kernel {
    pub use det_kernel::*;
}

/// User-level runtime: `det-runtime`.
pub mod runtime {
    pub use det_runtime::*;
}

/// Cluster simulation: `det-cluster`.
pub mod cluster {
    pub use det_cluster::*;
}

/// The paper's benchmarks: `det-workloads`.
pub mod workloads {
    pub use det_workloads::*;
}
