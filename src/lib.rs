//! **determinator** — a Rust reproduction of *"Efficient
//! System-Enforced Deterministic Parallelism"* (Aviram, Weng, Hu,
//! Ford; OSDI 2010).
//!
//! Determinator is an operating system that makes *all* unprivileged
//! computation deterministic by construction: user code runs in a
//! hierarchy of single-threaded [`kernel::SpaceCtx`] *spaces* with
//! private virtual memory, three system calls (Put/Get/Ret), and no
//! access to any nondeterministic input except explicit, loggable
//! device events at the root. On top, a user-level runtime rebuilds
//! processes, a shared file system, shared-memory threads and even
//! legacy lock-based APIs — all race-free or
//! deterministically-scheduled.
//!
//! This crate is a facade with an *intentional* public surface: every
//! name below is re-exported explicitly (no glob re-exports), so the
//! API a release promises is exactly what this file lists. Start with
//! [`prelude`] for the common vocabulary, or reach into a domain
//! module:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`memory`] | `det-memory` | paged COW address spaces, snapshots, byte-granularity merge |
//! | [`vm`] | `det-vm` | deterministic RISC-style VM with exact instruction limits |
//! | [`kernel`] | `det-kernel` | spaces, Put/Get/Ret, devices, virtual-time cost model, trace record/replay |
//! | [`runtime`] | `det-runtime` | fork/exec/wait, replicated fs, threads, dsched, shell |
//! | [`cluster`] | `det-cluster` | space migration across simulated nodes |
//! | [`workloads`] | `det-workloads` | the paper's benchmarks + baselines |
//! | [`conform`] | `det-conform` | N-replica conformance harness with divergence localization |
//! | [`analyze`] | `det-analyze` | sound VM footprint/conflict analysis + the workspace determinism lint |
//!
//! # Quickstart
//!
//! The paper's headline example: two "threads" racing on `x` and `y`
//! swap them cleanly, because each works in a private workspace and
//! the kernel merges their writes at join:
//!
//! ```
//! use determinator::prelude::*;
//!
//! let shared = Region::new(0x1000, 0x2000);
//! let (x, y) = (0x1000, 0x1008);
//! let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
//!     ctx.mem_mut().map_zero(shared, Perm::RW)?;
//!     ctx.mem_mut().write_u64(x, 1)?;
//!     ctx.mem_mut().write_u64(y, 2)?;
//!     ctx.put(0, PutSpec::new()
//!         .program(Program::native(move |c| {
//!             let v = c.mem().read_u64(y)?;
//!             c.mem_mut().write_u64(x, v)?; // x = y
//!             Ok(0)
//!         }))
//!         .copy(CopySpec::mirror(shared)).snap().start())?;
//!     ctx.put(1, PutSpec::new()
//!         .program(Program::native(move |c| {
//!             let v = c.mem().read_u64(x)?;
//!             c.mem_mut().write_u64(y, v)?; // y = x
//!             Ok(0)
//!         }))
//!         .copy(CopySpec::mirror(shared)).snap().start())?;
//!     ctx.get(0, GetSpec::new().merge(shared))?;
//!     ctx.get(1, GetSpec::new().merge(shared))?;
//!     assert_eq!(ctx.mem().read_u64(x)?, 2);
//!     assert_eq!(ctx.mem().read_u64(y)?, 1);
//!     Ok(0)
//! });
//! assert_eq!(out.exit, Ok(0));
//! ```
//!
//! # Record and replay
//!
//! Attach a [`TraceSink`] and the kernel records every syscall-level
//! transition; the collected [`Trace`] re-applies through the pure
//! state machine — *no execution vehicles* — and reproduces the same
//! stats, digests, and virtual clock (see `examples/replay.rs`):
//!
//! ```
//! use determinator::prelude::*;
//!
//! let sink = TraceSink::new();
//! let cfg = KernelConfig::builder().trace(sink.clone()).build();
//! let live = Kernel::new(cfg).run(|ctx| {
//!     ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
//!     Ok(7)
//! });
//! let trace = sink.collect().expect("run was traced");
//! let replayed = trace.replay().expect("trace replays");
//! assert_eq!(replayed.exit, live.exit);
//! assert_eq!(replayed.vclock_ns, live.vclock_ns);
//! ```
//!
//! See `examples/` for the actor simulation (Figure 1), the parallel
//! make scenario (Figure 4), the scripted shell, record/replay, and
//! cluster distribution.

#![warn(missing_docs)]

// The headline API, also available unqualified at the crate root.
pub use det_kernel::{
    CostModel, HostStats, Kernel, KernelConfig, KernelConfigBuilder, KernelError, KernelStats,
    ReplayOutcome, RunOutcome, SpaceArtifact, Trace, TraceEvent, TraceMeta, TraceSink,
};

/// The common vocabulary for driving a deterministic kernel: one
/// `use determinator::prelude::*` covers kernel construction, the
/// Put/Get/Ret syscall surface, memory regions, and trace
/// record/replay.
pub mod prelude {
    pub use det_kernel::{
        CopySpec, CostModel, DeviceId, GetResult, GetSpec, IoMode, Kernel, KernelConfig,
        KernelConfigBuilder, KernelError, KernelStats, Program, PutResult, PutSpec, ReplayOutcome,
        RunOutcome, SpaceCtx, StartSpec, StopReason, Trace, TraceMeta, TraceSink, TrapKind,
        VmDispatch,
    };
    pub use det_memory::{ConflictPolicy, Perm, Region};
}

/// Paged copy-on-write memory: `det-memory`.
pub mod memory {
    pub use det_memory::{
        AccessTracker, AddressSpace, CloneStats, ConflictPolicy, ContentDigest, Frame, MemError,
        MergeConflict, MergeStats, PAGE_SHIFT, PAGE_SIZE, PAGES_PER_LEAF, PageDelta, PageDeltaOp,
        PageInfo, Perm, Region, Result, SpaceDelta, Translation, reference,
    };
}

/// Deterministic virtual CPU: `det-vm`.
pub mod vm {
    pub use det_vm::{
        AsmError, Cpu, CpuCacheStats, DecodeError, Image, Insn, Opcode, Regs, VmExit, VmTrap,
        assemble, corpus, decode, disassemble, encode,
    };
}

/// The Determinator kernel: `det-kernel`.
pub mod kernel {
    pub use det_kernel::{
        CHECKPOINT_FORMAT_VERSION, Checkpoint, Checkpointer, ChildNum, ClusterHooks, CopySpec,
        CostModel, DeviceId, Effect, EntryRec, Fault, FaultAction, FaultPlan, FaultSite, GetResult,
        GetSpec, HostStats, InputEvent, InputHandle, IoLog, IoMode, Kernel, KernelConfig,
        KernelConfigBuilder, KernelError, KernelStats, MergeStatsSerde, NODE_SHIFT, NativeEntry,
        NativeResult, Program, ProgramKind, PutRec, PutResult, PutSpec, ReplayOutcome,
        RestoredKernel, Result, RunOutcome, SpaceArtifact, SpaceCtx, SpaceId, StartSpec,
        StopReason, Trace, TraceEvent, TraceMeta, TraceSink, TrapKind, VmCounters, VmDispatch,
        child_index, child_on_node, full_user_region, latest_restorable_boundary, node_field,
        ns_to_ps, ps_to_ns, restore_chain,
    };
    // Substrate types the kernel API surfaces directly.
    pub use det_memory::{
        AddressSpace, ConflictPolicy, MemError, MergeConflict, MergeStats, Perm, Region,
    };
    pub use det_vm::Regs;
}

/// User-level runtime: `det-runtime`.
pub mod runtime {
    pub use det_runtime::{
        ExitStatus, FileSys, JoinResult, Pid, Proc, ProgramRegistry, ReconcileStats, Result,
        RtError, ThreadGroup, barrier, dsched, fs, layout, proc, run_deterministic,
        run_process_tree, run_process_tree_on, shell, thread_id, threads,
    };
}

/// Cluster simulation: `det-cluster`.
pub mod cluster {
    pub use det_cluster::{
        ClusterOutcome, ClusterSpec, ClusterStats, JobArtifact, JobFn, JobOutcome, JobSpec,
        NetworkModel, Remote, ResidencyStats, SimCluster,
    };
}

/// The paper's benchmarks: `det-workloads`.
pub mod workloads {
    pub use det_workloads::{
        Mode, RunResult, baseline_costs, blackscholes, dist, fft, lu, mathx, matmult, md5, qsort,
        secs, sharded, speedup,
    };
}

/// Sound static analysis + determinism lint: `det-analyze`.
pub mod analyze {
    pub use det_analyze::{
        Analysis, AnalyzeConfig, Footprint, MustWrite, PageSet, Segment, Val, Verdict, analyze,
        analyze_with_regs, classify, classify_with_base, lint,
    };
}

/// The conformance harness: `det-conform`.
pub mod conform {
    pub use det_conform::{
        Artifacts, ChaosLoad, ConformConfig, Divergence, DivergenceCategory, Scenario,
        ScenarioConfig, ScenarioReport, ScenarioRun, Scope, compare, conform_all, conform_scenario,
        cross_dispatch_check, find, first_diff, hex_context, registry,
    };
}
