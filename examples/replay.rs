//! Record/replay, two ways.
//!
//! **I/O-log replay** (PAPER.md §2.1): all nondeterministic inputs are
//! explicit device events at the root, so logging them suffices to
//! reproduce an entire parallel execution bit-for-bit by *re-running*
//! it — no internal event logging.
//!
//! **Syscall-trace replay** (DESIGN.md §7): attach a [`TraceSink`] and
//! the kernel records every syscall-level transition it feeds its pure
//! core; the collected [`Trace`] re-applies through `apply(state,
//! event)` **without running any program code at all** — no threads,
//! no VM, no devices — and reproduces the same exit status, virtual
//! clock, kernel stats, and per-space memory digests.
//!
//! ```sh
//! cargo run --release --example replay
//! ```

use determinator::kernel::{DeviceId, IoMode, Kernel, KernelConfig, Trace, TraceSink};
use determinator::runtime::proc::{ProgramRegistry, run_process_tree_on};

fn app(p: &mut determinator::runtime::Proc<'_>) -> determinator::runtime::Result<i32> {
    // A parallel app mixing console input, clock reads, and entropy.
    let mut line = [0u8; 64];
    let n = p.read(0, &mut line)?;
    let who = String::from_utf8_lossy(&line[..n]).trim().to_string();

    let clock = p.ctx().dev_read(DeviceId::Clock)?.unwrap_or_default();
    let seed = p.ctx().dev_read(DeviceId::Random)?.unwrap_or_default();
    let t = u64::from_le_bytes(clock.try_into().unwrap_or_default());
    let s = u64::from_le_bytes(seed.try_into().unwrap_or_default());

    let pid = p.fork(move |c| {
        c.charge(1_000_000)?;
        c.print(&format!(
            "child computed token {:x}\n",
            s.rotate_left(17) ^ 0xD15C
        ))?;
        Ok(0)
    })?;
    p.waitpid(pid)?;
    p.print(&format!("hello {who}, clock={t}, seed={s:x}\n"))?;
    Ok(0)
}

fn main() {
    // --- Run 1: record (both the I/O log and the syscall trace). -----
    let sink = TraceSink::new();
    let kernel = Kernel::new(KernelConfig::builder().trace(sink.clone()).build());
    kernel.push_input(DeviceId::ConsoleIn, b"ada\n".to_vec());
    let rec = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    assert_eq!(rec.exit, Ok(0));
    println!("--- recorded run ---");
    print!("{}", rec.console_string());
    let log_json = rec.io_log.to_json();
    println!(
        "({} input events captured, {} bytes of log)",
        rec.io_log.events.len(),
        log_json.len()
    );

    // --- Run 2: re-execute from the I/O log alone (no pushed input!).
    let log = determinator::kernel::IoLog::from_json(&log_json).expect("log parses");
    let kernel = Kernel::new(KernelConfig::builder().io(IoMode::Replay(log)).build());
    let rep = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    println!("--- replayed run (re-executed from I/O log) ---");
    print!("{}", rep.console_string());
    assert_eq!(rec.console(), rep.console(), "replay must be bit-identical");
    assert_eq!(rec.vclock_ns, rep.vclock_ns, "even virtual time matches");

    // --- Run 3: re-apply the syscall trace — no program code runs. ---
    let trace = sink.collect().expect("sink recorded the run");
    let trace_json = trace.to_json();
    let trace = Trace::from_json(&trace_json).expect("trace parses");
    println!(
        "--- replayed run (pure state machine, {} events, {} bytes of trace) ---",
        trace.len(),
        trace_json.len()
    );
    let pure = trace.replay().expect("trace replays");
    print!(
        "{}",
        String::from_utf8_lossy(
            pure.outputs
                .get(&DeviceId::ConsoleOut)
                .map(Vec::as_slice)
                .unwrap_or(&[])
        )
    );
    assert_eq!(pure.exit, rec.exit, "exit status replays");
    assert_eq!(pure.outputs, rec.outputs, "device outputs replay");
    assert_eq!(pure.vclock_ns, rec.vclock_ns, "virtual clock replays");
    assert_eq!(pure.spaces, rec.spaces, "per-space artifacts replay");
    // Host scheduling noise lives in `rec.host`, not in the stats —
    // so the comparison needs no carve-outs.
    assert_eq!(pure.stats, rec.stats, "kernel stats replay");

    println!(
        "\nreplay identical: {} syscall events re-applied with zero vehicles;",
        trace.len()
    );
    println!("output, stats, digests, and virtual clock all match exactly");
}
