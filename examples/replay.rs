//! Record/replay (PAPER.md §2.1): all nondeterministic inputs are explicit
//! device events at the root, so logging them suffices to reproduce an
//! entire parallel execution bit-for-bit — no internal event logging.
//!
//! ```sh
//! cargo run --release --example replay
//! ```

use determinator::kernel::{DeviceId, IoMode, Kernel, KernelConfig};
use determinator::runtime::proc::{ProgramRegistry, run_process_tree_on};

fn app(p: &mut determinator::runtime::Proc<'_>) -> determinator::runtime::Result<i32> {
    // A parallel app mixing console input, clock reads, and entropy.
    let mut line = [0u8; 64];
    let n = p.read(0, &mut line)?;
    let who = String::from_utf8_lossy(&line[..n]).trim().to_string();

    let clock = p.ctx().dev_read(DeviceId::Clock)?.unwrap_or_default();
    let seed = p.ctx().dev_read(DeviceId::Random)?.unwrap_or_default();
    let t = u64::from_le_bytes(clock.try_into().unwrap_or_default());
    let s = u64::from_le_bytes(seed.try_into().unwrap_or_default());

    let pid = p.fork(move |c| {
        c.charge(1_000_000)?;
        c.print(&format!(
            "child computed token {:x}\n",
            s.rotate_left(17) ^ 0xD15C
        ))?;
        Ok(0)
    })?;
    p.waitpid(pid)?;
    p.print(&format!("hello {who}, clock={t}, seed={s:x}\n"))?;
    Ok(0)
}

fn main() {
    // --- Run 1: record. ---------------------------------------------
    let kernel = Kernel::new(KernelConfig::default());
    kernel.push_input(DeviceId::ConsoleIn, b"ada\n".to_vec());
    let rec = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    assert_eq!(rec.exit, Ok(0));
    println!("--- recorded run ---");
    print!("{}", rec.console_string());
    let log_json = rec.io_log.to_json();
    println!(
        "({} input events captured, {} bytes of log)",
        rec.io_log.events.len(),
        log_json.len()
    );

    // --- Run 2: replay from the log alone (no pushed input!). --------
    let log = determinator::kernel::IoLog::from_json(&log_json).expect("log parses");
    let kernel = Kernel::new(KernelConfig {
        io: IoMode::Replay(log),
        ..Default::default()
    });
    let rep = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    println!("--- replayed run ---");
    print!("{}", rep.console_string());

    assert_eq!(rec.console(), rep.console(), "replay must be bit-identical");
    assert_eq!(rec.vclock_ns, rep.vclock_ns, "even virtual time matches");
    println!("\nreplay identical: output and virtual clock match exactly");
}
