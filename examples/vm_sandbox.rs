//! System-enforced determinism on untrusted code (PAPER.md §3.2): an assembly
//! program runs inside a VM space under an exact instruction limit —
//! it cannot observe time, scheduling, or anything nondeterministic,
//! and the kernel preempts it mid-loop at a precise instruction count.
//!
//! ```sh
//! cargo run --release --example vm_sandbox
//! ```

use determinator::kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Regs, StopReason,
};
use determinator::memory::{Perm, Region};
use determinator::vm::assemble;

const UNTRUSTED: &str = "
    ; Untrusted guest: computes Fibonacci numbers forever.
    ldi r3, 0          ; F(n)
    ldi r4, 1          ; F(n+1)
    ldi r5, 0          ; iteration counter
loop:
    add r6, r3, r4
    mov r3, r4
    mov r4, r6
    addi r5, r5, 1
    beq r0, r0, loop   ; never yields, never exits
";

fn main() {
    let image = assemble(UNTRUSTED).expect("assembles");
    let code = Region::new(0, 0x1000);
    let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
        ctx.mem_mut().map_zero(code, Perm::RW)?;
        ctx.mem_mut().write(0, &image.bytes)?;
        // Give the guest 1 µs of virtual CPU (= 1000 instructions at
        // the modeled 1 GIPS), then audit, then another quantum.
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(code))
                .regs(Regs::at_entry(0))
                .start_limited(1_000),
        )?;
        for quantum in 1..=3 {
            let r = ctx.get(0, GetSpec::new().regs())?;
            assert_eq!(r.stop, StopReason::LimitReached);
            let regs = r.regs.expect("requested");
            println!(
                "quantum {quantum}: preempted after exactly {} iterations (r5), fib register = {}",
                regs.gpr[5], regs.gpr[3]
            );
            ctx.put(0, PutSpec::new().start_limited(1_000))?;
        }
        let r = ctx.get(0, GetSpec::new().regs())?;
        println!(
            "quantum 4: r5 = {} — the guest advanced exactly the budget each time",
            r.regs.expect("requested").gpr[5]
        );
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    println!(
        "total guest instructions: {} (exact, replayable; host time is invisible to the guest)",
        out.stats.vm_instructions
    );
}
