//! System-enforced determinism on untrusted code (PAPER.md §3.2): an assembly
//! program runs inside a VM space under an exact instruction limit —
//! it cannot observe time, scheduling, or anything nondeterministic,
//! and the kernel preempts it mid-loop at a precise instruction count.
//!
//! The guest and its quantum-by-quantum audit live in the conformance
//! registry as the `vm_sandbox` scenario (`det_conform::scenario`);
//! the harness replays it as N replicas in both VM dispatch modes.
//!
//! ```sh
//! cargo run --release --example vm_sandbox
//! ```

use determinator::conform::{ScenarioConfig, find};
use determinator::prelude::VmDispatch;

fn main() {
    let sc = find("vm_sandbox").expect("registered scenario");
    let run = (sc.run)(&ScenarioConfig {
        dispatch: VmDispatch::default(),
        trace: false,
        faults: determinator::kernel::FaultPlan::default(),
    });
    let out = run.outcome;
    assert_eq!(out.exit, Ok(0));
    // Per-quantum preemption audit (exact r5 iteration counts).
    print!("{}", out.console_string());
    println!(
        "total guest instructions: {} (exact, replayable; host time is invisible to the guest)",
        out.stats.vm_instructions
    );
}
