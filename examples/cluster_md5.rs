//! Distributed md5 cracking via space migration (PAPER.md §3.3, §6.3): the same
//! shared-memory program, spread across simulated cluster nodes by
//! nothing more than node numbers in child ids.
//!
//! ```sh
//! cargo run --release --example cluster_md5
//! ```

use determinator::workloads::dist::{self, DistConfig};

fn main() {
    let size = 40_000;
    println!("searching a {size}-key space for a planted MD5 preimage\n");
    println!("nodes | circuit speedup | tree speedup | (over 1-node local run)");
    let base = dist::md5_tree(DistConfig {
        nodes: 1,
        size,
        tcp_like: false,
    })
    .vclock_ns;
    for nodes in [1u16, 2, 4, 8, 16] {
        let cfg = DistConfig {
            nodes,
            size,
            tcp_like: false,
        };
        let circuit = dist::md5_circuit(cfg);
        let tree = dist::md5_tree(cfg);
        println!(
            "{nodes:>5} | {:>15.2} | {:>12.2} |",
            base as f64 / circuit.vclock_ns as f64,
            base as f64 / tree.vclock_ns as f64,
        );
    }
    println!(
        "\nthe serial circuit saturates (the master's migrations serialize);\n\
         recursive tree distribution scales, as in the paper's Figure 11"
    );
}
