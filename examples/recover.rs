//! Crash recovery: kill a run mid-flight with an injected fault,
//! restore from a checkpoint, and finish byte-identically.
//!
//! Determinator's determinism makes recovery *replay with a
//! snapshotted prefix*: a checkpoint captures the kernel's pure state
//! at a rendezvous boundary, and resuming re-applies the recorded
//! trace suffix through the same pure core that live execution feeds.
//! Nothing about the crash can leak into the result — the recovered
//! run must match an uninterrupted one exactly, and this example
//! asserts that it does.
//!
//! ```sh
//! cargo run --release --example recover
//! ```

use determinator::kernel::{
    Checkpoint, CopySpec, FaultPlan, GetSpec, Kernel, KernelConfig, Program, PutSpec, Region,
    StopReason, TraceSink, latest_restorable_boundary,
};
use determinator::memory::Perm;

/// A fork/exchange/merge workload: four children, three rounds of the
/// fused put_get rendezvous, merges each round.
fn workload(plan: FaultPlan, sink: TraceSink) -> determinator::kernel::RunOutcome {
    let region = Region::new(0x1000, 0x5000);
    let cfg = KernelConfig::builder().trace(sink).faults(plan).build();
    Kernel::new(cfg).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        const N: u64 = 4;
        const ROUNDS: u64 = 3;
        for i in 0..N {
            ctx.put(
                i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        for round in 0..ROUNDS {
                            c.mem_mut()
                                .write_u64(0x2000 + i * 8, (round + 1) * 100 + i)?;
                            c.ret(round)?;
                        }
                        Ok(i as i32)
                    }))
                    .copy(CopySpec::mirror(region))
                    .snap()
                    .start(),
            )?;
        }
        for round in 0..ROUNDS {
            for i in 0..N {
                let r = if round == 0 {
                    ctx.get(i, GetSpec::new().merge(region))?
                } else {
                    ctx.put_get(
                        i,
                        PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                        GetSpec::new().merge(region),
                    )?
                };
                assert_eq!(r.stop, StopReason::Ret);
            }
        }
        for i in 0..N {
            ctx.put_get(
                i,
                PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                GetSpec::new().merge(region),
            )?;
        }
        Ok(ctx.mem().content_digest().value() as i32)
    })
}

fn main() {
    // --- Run 1: the uninterrupted oracle, traced. --------------------
    let sink = TraceSink::new();
    let oracle = workload(FaultPlan::default(), sink.clone());
    let trace = sink.collect().expect("sink recorded the run");
    println!(
        "oracle run: exit={:?}, vclock={} ns, {} trace events",
        oracle.exit,
        oracle.vclock_ns,
        trace.len()
    );

    // --- Run 2: the same workload, killed mid-flight. ----------------
    // The fault fires on a deterministic coordinate (the root's 9th
    // syscall), so the crash lands at the same point every time.
    let crash_sink = TraceSink::new();
    let crashed = workload(FaultPlan::kill_at_syscall(9), crash_sink.clone());
    let partial = crash_sink.collect().expect("partial trace survives");
    assert!(crashed.exit.is_err(), "the kill really stopped the run");
    println!(
        "crashed run: exit={:?} after {} events",
        crashed.exit,
        partial.len()
    );

    // --- Recover: checkpoint prefix + replay suffix. -----------------
    // Restore from the latest boundary at or before the crash point
    // that is *restorable* (outside any snapshot→merge window), then
    // re-feed the oracle trace's suffix through the pure core.
    let boundary = latest_restorable_boundary(&trace, partial.len());
    let ckpt = Checkpoint::capture(&trace, boundary).expect("capture");
    let bytes = ckpt.to_bytes();
    println!(
        "checkpoint: boundary {boundary}/{} events, {} bytes, digest {:016x}",
        trace.len(),
        bytes.len(),
        ckpt.digest()
    );

    let ckpt = Checkpoint::from_bytes(&bytes).expect("bundle verifies");
    let recovered = ckpt
        .restore()
        .expect("restore")
        .resume(&trace.events[boundary..])
        .expect("resume");

    assert_eq!(recovered.exit, oracle.exit, "exit status recovered");
    assert_eq!(recovered.vclock_ns, oracle.vclock_ns, "virtual clock too");
    assert_eq!(recovered.stats, oracle.stats, "every kernel stat matches");
    assert_eq!(recovered.spaces, oracle.spaces, "all memory digests match");
    println!(
        "recovered run identical: exit={:?}, vclock={} ns",
        recovered.exit, recovered.vclock_ns
    );

    // --- Tampering is caught before any state is restored. -----------
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    let err = Checkpoint::from_bytes(&corrupt).expect_err("must be rejected");
    println!("1-bit corruption rejected: {err:?}");
}
