//! Figure 1: the lock-step time simulation — a game/simulator with an
//! array of actors, each updated in place by a forked thread per time
//! step. Racy under conventional threads; exact under Determinator.
//!
//! The body lives in the conformance registry as the `actors_grid`
//! scenario (`det_conform::scenario`), so the same computation is
//! byte-compared across N replicas in CI. This wrapper runs one
//! replica and narrates.
//!
//! ```sh
//! cargo run --release --example actors
//! ```

use determinator::conform::{ScenarioConfig, find};
use determinator::prelude::VmDispatch;

fn main() {
    let sc = find("actors_grid").expect("registered scenario");
    let run = (sc.run)(&ScenarioConfig {
        dispatch: VmDispatch::default(),
        trace: false,
        faults: determinator::kernel::FaultPlan::default(),
    });
    let out = run.outcome;
    let digest = out.exit.expect("simulation trapped");
    // Per-step samples, written by the scenario through the console
    // device so they are part of the compared artifact bundle.
    print!("{}", out.console_string());
    println!("final universe digest: {digest:#x} (identical on every run, any host schedule)");
    println!(
        "virtual makespan {} µs over {} merges, 0 races possible",
        out.vclock_ns / 1000,
        out.stats.merges
    );
}
