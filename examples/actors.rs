//! Figure 1: the lock-step time simulation — a game/simulator with an
//! array of actors, each updated in place by a forked thread per time
//! step. Racy under conventional threads; exact under Determinator.
//!
//! ```sh
//! cargo run --release --example actors
//! ```

use determinator::kernel::KernelConfig;
use determinator::memory::{Perm, Region};
use determinator::runtime::run_deterministic;
use determinator::runtime::threads::ThreadGroup;

const NACTORS: u64 = 32;
const STEPS: usize = 8;
const SHARED: Region = Region {
    start: 0x1000_0000,
    end: 0x1000_0000 + 0x1000,
};

fn slot(i: u64) -> u64 {
    SHARED.start + (i % NACTORS) * 8
}

fn main() {
    let out = run_deterministic(KernelConfig::default(), |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        // initialize all elements of actor[] array
        for i in 0..NACTORS {
            ctx.mem_mut().write_u64(slot(i), i * i % 97)?;
        }
        // for (time = 0; ; time++)
        for time in 0..STEPS {
            let mut group = ThreadGroup::new(ctx, SHARED, 0);
            // for each actor: thread_fork(i) — child updates actor[i]
            for i in 0..NACTORS {
                group.fork(i, move |c| {
                    // examine state of nearby actors (the *old* state:
                    // our private replica is untouched by siblings)
                    let left = c.mem().read_u64(slot(i + NACTORS - 1))?;
                    let right = c.mem().read_u64(slot(i + 1))?;
                    let me = c.mem().read_u64(slot(i))?;
                    // update state of actor[i] accordingly, in place
                    c.mem_mut()
                        .write_u64(slot(i), (left + right + me) % 1_000_003)?;
                    c.charge(250)?;
                    Ok(0)
                })?;
            }
            // thread_join(i) for all — merges each child's update
            for i in 0..NACTORS {
                group.join(i)?;
            }
            let sample: Vec<u64> = (0..6)
                .map(|i| ctx.mem().read_u64(slot(i)).unwrap())
                .collect();
            println!("t={time}: actors[0..6] = {sample:?}");
        }
        // Digest the final universe so reruns can be compared.
        Ok((ctx.mem().content_digest().value() & 0x7fff_ffff) as i32)
    });
    let digest = out.exit.expect("simulation trapped");
    println!("final universe digest: {digest:#x} (identical on every run, any host schedule)");
    println!(
        "virtual makespan {} µs over {} merges, 0 races possible",
        out.vclock_ns / 1000,
        out.stats.merges
    );
}
