//! Quickstart: private workspaces, race-free swap, and conflict
//! detection (PAPER.md §2.2).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use determinator::kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, KernelError, Program, PutSpec,
};
use determinator::memory::{Perm, Region};

fn main() {
    let shared = Region::new(0x1000, 0x2000);
    let (x, y) = (0x1000u64, 0x1008u64);

    let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        ctx.mem_mut().write_u64(x, 1)?;
        ctx.mem_mut().write_u64(y, 2)?;

        // --- Part 1: `x = y` ∥ `y = x` swaps cleanly. -------------
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::native(move |c| {
                    let v = c.mem().read_u64(y)?;
                    c.mem_mut().write_u64(x, v)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(shared))
                .snap()
                .start(),
        )?;
        ctx.put(
            1,
            PutSpec::new()
                .program(Program::native(move |c| {
                    let v = c.mem().read_u64(x)?;
                    c.mem_mut().write_u64(y, v)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(shared))
                .snap()
                .start(),
        )?;
        ctx.get(0, GetSpec::new().merge(shared))?;
        ctx.get(1, GetSpec::new().merge(shared))?;
        println!(
            "after `x = y` ∥ `y = x`:  x = {}, y = {}   (swapped, no race)",
            ctx.mem().read_u64(x)?,
            ctx.mem().read_u64(y)?
        );

        // --- Part 2: a write/write race is *detected*, not silent. --
        for i in 0..2u64 {
            ctx.put(
                10 + i,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        c.mem_mut().write_u64(0x1010, 100 + i)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(shared))
                    .snap()
                    .start(),
            )?;
        }
        ctx.get(10, GetSpec::new().merge(shared))?;
        match ctx.get(11, GetSpec::new().merge(shared)) {
            Err(KernelError::Conflict(c)) => {
                println!(
                    "write/write race on 0x{:x} detected at join: child wrote {}, sibling wrote {}",
                    c.addr, c.child, c.parent
                );
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    println!(
        "virtual makespan: {} µs, merges: {}, conflicts detected: {}",
        out.vclock_ns / 1000,
        out.stats.merges,
        out.stats.conflicts
    );
}
