//! Quickstart: private workspaces, race-free swap, and conflict
//! detection (PAPER.md §2.2).
//!
//! The body lives in the conformance registry as the
//! `quickstart_swap` scenario (`det_conform::scenario`), so the exact
//! computation this example demonstrates is also what the N-replica
//! harness verifies in CI. This wrapper runs it once and narrates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use determinator::conform::{ScenarioConfig, find};
use determinator::prelude::VmDispatch;

fn main() {
    let sc = find("quickstart_swap").expect("registered scenario");
    let run = (sc.run)(&ScenarioConfig {
        dispatch: VmDispatch::default(),
        trace: false,
        faults: determinator::kernel::FaultPlan::default(),
    });
    let out = run.outcome;
    assert_eq!(out.exit, Ok(0));
    // The scenario reports through the console device: the clean swap,
    // then the *detected* (not silent) write/write race.
    print!("{}", out.console_string());
    println!(
        "virtual makespan: {} µs, merges: {}, conflicts detected: {}",
        out.vclock_ns / 1000,
        out.stats.merges,
        out.stats.conflicts
    );
}
