//! The scripted Determinator shell (PAPER.md §5): pipelines, redirection, and
//! byte-identical reruns (PAPER.md §4.3).
//!
//! The script and the exec'd `upper` program live in the conformance
//! registry as the `shell_pipeline` scenario
//! (`det_conform::scenario`). This wrapper runs it twice and checks
//! the reruns are byte-identical — the same property the N-replica
//! harness enforces for the whole artifact bundle in CI.
//!
//! ```sh
//! cargo run --release --example shell_demo
//! ```

use determinator::conform::{ScenarioConfig, find};
use determinator::prelude::VmDispatch;

fn main() {
    let sc = find("shell_pipeline").expect("registered scenario");
    let run = || {
        (sc.run)(&ScenarioConfig {
            dispatch: VmDispatch::default(),
            trace: false,
            faults: determinator::kernel::FaultPlan::default(),
        })
        .outcome
    };
    let first = run();
    assert_eq!(first.exit, Ok(0));
    print!("{}", first.console_string());

    let second = run();
    assert_eq!(
        first.console(),
        second.console(),
        "reruns must be byte-identical"
    );
    println!(
        "\n(rerun produced byte-identical console output: {} bytes)",
        first.console().len()
    );
}
