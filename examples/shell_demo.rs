//! The scripted Determinator shell (PAPER.md §5): pipelines, redirection, and
//! byte-identical reruns (PAPER.md §4.3).
//!
//! ```sh
//! cargo run --release --example shell_demo
//! ```

use determinator::kernel::KernelConfig;
use determinator::runtime::proc::{ProgramRegistry, run_process_tree};
use determinator::runtime::shell;

const SCRIPT: &str = "
# Build a tiny corpus, then query it through a pipeline.
echo the quick brown fox > corpus.txt
echo jumps over the lazy dog >> corpus.txt
cat corpus.txt | wc > stats.txt
cat stats.txt
ls
upper corpus.txt
";

fn registry() -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    // A user 'binary' resolved via exec(), like a program on $PATH.
    reg.register("upper", |p, args| {
        let path = args.first().cloned().unwrap_or_default();
        let fd = p.open_read(&path)?;
        let data = p.read_to_end(fd)?;
        let upper: Vec<u8> = data.iter().map(|b| b.to_ascii_uppercase()).collect();
        p.write(1, &upper)?;
        Ok(0)
    });
    reg
}

fn main() {
    let run = || {
        run_process_tree(KernelConfig::default(), registry(), |p| {
            shell::run_script(p, SCRIPT)
        })
    };
    let first = run();
    assert_eq!(first.exit, Ok(0));
    print!("{}", first.console_string());

    let second = run();
    assert_eq!(
        first.console(),
        second.console(),
        "reruns must be byte-identical"
    );
    println!(
        "\n(rerun produced byte-identical console output: {} bytes)",
        first.console().len()
    );
}
