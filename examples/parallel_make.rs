//! Figure 4 + PAPER.md §4.2: a parallel `make` on the process runtime — forked
//! compiler processes write .o files into private file-system
//! replicas, reconciled at wait(); the deterministic wait() schedule
//! trade-off is printed.
//!
//! ```sh
//! cargo run --release --example parallel_make
//! ```

use determinator::kernel::KernelConfig;
use determinator::runtime::proc::{ProgramRegistry, run_process_tree};

fn main() {
    // Tasks: (name, virtual duration ms) as in Figure 4.
    let tasks = [("lexer.o", 6u64), ("parser.o", 2), ("emit.o", 4)];

    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), move |p| {
        // `make -j2`: start the first two compilers.
        let mut running = Vec::new();
        for &(name, ms) in &tasks[..2] {
            let pid = p.fork(move |c| {
                c.charge(ms * 1_000_000)?;
                let fd = c.open_write(&format!("obj/{name}"))?;
                c.write(fd, format!("compiled {name} in {ms}ms").as_bytes())?;
                Ok(0)
            })?;
            running.push(pid);
            p.print(&format!("started compile of {name} ({ms} ms)\n"))?;
        }
        // Quota reached: wait for "a" child. Determinator returns the
        // EARLIEST FORK (lexer.o, 6ms), not the first to finish
        // (parser.o, 2ms) — Figure 4's (c) vs (d).
        let (first, _) = p.wait()?;
        p.print(&format!(
            "wait() returned pid {} — the earliest fork, deterministically\n",
            first.0
        ))?;
        let (name, ms) = tasks[2];
        let pid3 = p.fork(move |c| {
            c.charge(ms * 1_000_000)?;
            let fd = c.open_write(&format!("obj/{name}"))?;
            c.write(fd, format!("compiled {name} in {ms}ms").as_bytes())?;
            Ok(0)
        })?;
        p.print(&format!("started compile of {name} ({ms} ms)\n"))?;
        let _ = pid3;
        while p.has_children() {
            p.wait()?;
        }
        // All objects arrived in the parent's replica via
        // reconciliation, conflict-free.
        for f in p.fs().list("obj/") {
            let fd = p.open_read(&f)?;
            let data = p.read_to_end(fd)?;
            p.print(&format!("{f}: {}\n", String::from_utf8_lossy(&data)))?;
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    print!("{}", out.console_string());
    println!(
        "\nmakespan: {:.1} ms under Determinator's deterministic wait()",
        out.vclock_ns as f64 / 1e6
    );
    println!("(Unix first-completion wait() would pack the same tasks into 6.0 ms —");
    println!(" the paper's advice: leave scheduling to the system, `make -j` not `-j2`)");
}
