//! Figure 4 + PAPER.md §4.2: a parallel `make` on the process runtime — forked
//! compiler processes write .o files into private file-system
//! replicas, reconciled at wait(); the deterministic wait() schedule
//! trade-off is printed.
//!
//! The build graph lives in the conformance registry as the
//! `parallel_make` scenario (`det_conform::scenario`), so the same
//! fork/wait/fs behaviour is byte-compared across N replicas in CI.
//!
//! ```sh
//! cargo run --release --example parallel_make
//! ```

use determinator::conform::{ScenarioConfig, find};
use determinator::prelude::VmDispatch;

fn main() {
    let sc = find("parallel_make").expect("registered scenario");
    let run = (sc.run)(&ScenarioConfig {
        dispatch: VmDispatch::default(),
        trace: false,
        faults: determinator::kernel::FaultPlan::default(),
    });
    let out = run.outcome;
    assert_eq!(out.exit, Ok(0));
    print!("{}", out.console_string());
    println!(
        "\nmakespan: {:.1} ms under Determinator's deterministic wait()",
        out.vclock_ns as f64 / 1e6
    );
    println!("(Unix first-completion wait() would pack the same tasks into 6.0 ms —");
    println!(" the paper's advice: leave scheduling to the system, `make -j` not `-j2`)");
}
